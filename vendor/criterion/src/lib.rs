//! A minimal, dependency-free, offline shim of the [criterion](https://crates.io/crates/criterion)
//! API surface used by this workspace's benches.
//!
//! The build environment has no access to crates.io, so this vendored crate implements
//! just enough of criterion for `cargo bench`: [`Criterion`] with the builder methods the
//! benches call, [`Bencher::iter`], and the [`criterion_group!`]/[`criterion_main!`]
//! macros. Timing is a straightforward warm-up + fixed-sample mean/min/max measurement
//! printed to stdout; there is no statistical analysis, plotting or HTML report.
//!
//! Beyond the real criterion API, the shim emits a **machine-readable result file**:
//! after the groups of a bench binary finish, [`criterion_main!`] merges every
//! `bench_function` measurement (plus any [`record_metric`] values the benches
//! reported, e.g. suite proved/total counts) into `BENCH_results.json` at the
//! workspace root (override the path with `JAHOB_BENCH_OUT`). Entries are merged
//! name-by-name across bench binaries and runs, so one `cargo bench` sweep produces a
//! single file and re-running one harness refreshes only its own entries — the bench
//! trajectory CI and EXPERIMENTS.md track across PRs.
//!
//! Merging keeps renamed or deleted benches alive forever unless something expires
//! them, so every entry carries a **run generation** (`"gen"`). An ordinary run
//! writes at the file's current generation and prunes nothing. A full sweep sets
//! `JAHOB_BENCH_GEN` to a fresh (larger) number for every binary: the first write
//! of the sweep prunes every entry of an older generation, and each binary then
//! re-adds its own rows — so when the sweep finishes, the file holds exactly the
//! rows that were measured, and stale rows from renamed benches are gone.

use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Re-export of the standard opaque value barrier, matching `criterion::black_box`.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Benchmark driver. Created by [`criterion_group!`]'s `config` expression.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            warm_up_time: Duration::from_secs(3),
            measurement_time: Duration::from_secs(5),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the duration of the untimed warm-up phase.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the target duration of the timed phase.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark: warms up, then times `sample_size` samples and prints a
    /// `name  time: [min mean max]` summary line.
    pub fn bench_function<S, F>(&mut self, id: S, mut f: F) -> &mut Self
    where
        S: AsRef<str>,
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            iters_per_sample: 1,
            target_sample_time: self.measurement_time / self.sample_size.max(1) as u32,
            samples: Vec::new(),
        };

        // Warm-up: run the routine untimed until the warm-up budget is spent, scaling
        // the per-sample iteration count to keep each sample fast but measurable.
        let warm_up_start = Instant::now();
        let mut iterations: u64 = 0;
        while warm_up_start.elapsed() < self.warm_up_time {
            f(&mut bencher);
            iterations += bencher.iters_per_sample;
            if iterations >= 1_000_000 {
                break;
            }
        }
        bencher.samples.clear();

        // Measurement: collect `sample_size` samples, but never run past roughly the
        // configured measurement budget.
        let measure_start = Instant::now();
        while bencher.samples.len() < self.sample_size
            && measure_start.elapsed() < self.measurement_time
        {
            f(&mut bencher);
        }
        if bencher.samples.is_empty() {
            f(&mut bencher); // Always collect at least one sample.
        }

        let per_iter: Vec<Duration> = bencher
            .samples
            .iter()
            .map(|(elapsed, iters)| *elapsed / (*iters).max(1) as u32)
            .collect();
        let min = per_iter.iter().min().copied().unwrap_or_default();
        let max = per_iter.iter().max().copied().unwrap_or_default();
        let mean = per_iter.iter().sum::<Duration>() / per_iter.len().max(1) as u32;
        println!(
            "{:<40} time: [{:>12?} {:>12?} {:>12?}]  ({} samples)",
            id.as_ref(),
            min,
            mean,
            max,
            per_iter.len()
        );
        registry().lock().expect("bench registry").benches.push((
            id.as_ref().to_string(),
            BenchRecord {
                mean_ns: mean.as_nanos() as u64,
                min_ns: min.as_nanos() as u64,
                max_ns: max.as_nanos() as u64,
                samples: per_iter.len() as u64,
            },
        ));
        self
    }
}

/// One `bench_function` measurement as written to `BENCH_results.json`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BenchRecord {
    mean_ns: u64,
    min_ns: u64,
    max_ns: u64,
    samples: u64,
}

/// A named entry plus the run generation that last (re-)measured it.
type Stamped<T> = Vec<(String, u64, T)>;

#[derive(Debug, Default)]
struct Registry {
    benches: Vec<(String, BenchRecord)>,
    metrics: Vec<(String, f64)>,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: Mutex<Registry> = Mutex::new(Registry {
        benches: Vec::new(),
        metrics: Vec::new(),
    });
    &REGISTRY
}

/// Records a named scalar metric (e.g. `suite_proved`, `suite_cache_hits`) alongside
/// the timing results; written to the `metrics` section of `BENCH_results.json`.
pub fn record_metric(name: impl AsRef<str>, value: f64) {
    registry()
        .lock()
        .expect("bench registry")
        .metrics
        .push((name.as_ref().to_string(), value));
}

/// The output path for [`write_results`]: `$JAHOB_BENCH_OUT` when set, otherwise
/// `BENCH_results.json` next to the nearest enclosing `Cargo.lock` (the workspace
/// root — cargo runs bench binaries with the *package* directory as CWD), falling
/// back to the current directory.
fn results_path() -> PathBuf {
    if let Ok(path) = std::env::var("JAHOB_BENCH_OUT") {
        return PathBuf::from(path);
    }
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if dir.join("Cargo.lock").exists() {
            return dir.join("BENCH_results.json");
        }
        if !dir.pop() {
            return PathBuf::from("BENCH_results.json");
        }
    }
}

/// Writes (merging) this binary's measurements and metrics into the results file.
/// Called automatically by the `main` that [`criterion_main!`] generates; a write
/// failure prints a warning instead of failing the bench run.
pub fn write_results() {
    let path = results_path();
    if let Err(e) = write_results_to(&path) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
}

/// [`write_results`] to an explicit path (exposed for the shim's own tests).
pub fn write_results_to(path: &Path) -> std::io::Result<()> {
    let registry = registry().lock().expect("bench registry");
    let mut benches: Stamped<BenchRecord> = Vec::new();
    let mut metrics: Stamped<f64> = Vec::new();
    if let Ok(existing) = std::fs::read_to_string(path) {
        let (b, m) = parse_results(&existing);
        benches = b;
        metrics = m;
    }
    let current = benches
        .iter()
        .map(|(_, gen, _)| *gen)
        .chain(metrics.iter().map(|(_, gen, _)| *gen))
        .max()
        .unwrap_or(0);
    let generation = run_generation(std::env::var("JAHOB_BENCH_GEN").ok().as_deref(), current);
    // A bumped generation starts a fresh sweep: rows not re-measured since the
    // previous sweep are stale (renamed or deleted bench ids) and are pruned; each
    // binary of the sweep then re-adds the rows it actually measured. Ordinary runs
    // (generation unchanged) never lose rows, even after an interrupted sweep left
    // the file mixed-generation.
    if generation > current {
        benches.retain(|(_, gen, _)| *gen >= generation);
        metrics.retain(|(_, gen, _)| *gen >= generation);
    }
    for (name, record) in &registry.benches {
        upsert(&mut benches, name, generation, *record);
    }
    for (name, value) in &registry.metrics {
        upsert(&mut metrics, name, generation, *value);
    }
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"jahob-bench-results/2\",\n  \"benches\": {\n");
    for (i, (name, gen, r)) in benches.iter().enumerate() {
        let comma = if i + 1 < benches.len() { "," } else { "" };
        out.push_str(&format!(
            "    \"{}\": {{\"mean_ns\": {}, \"min_ns\": {}, \"max_ns\": {}, \"samples\": {}, \"gen\": {}}}{}\n",
            escape(name),
            r.mean_ns,
            r.min_ns,
            r.max_ns,
            r.samples,
            gen,
            comma
        ));
    }
    out.push_str("  },\n  \"metrics\": {\n");
    for (i, (name, gen, v)) in metrics.iter().enumerate() {
        let comma = if i + 1 < metrics.len() { "," } else { "" };
        out.push_str(&format!(
            "    \"{}\": {{\"value\": {}, \"gen\": {}}}{}\n",
            escape(name),
            v,
            gen,
            comma
        ));
    }
    out.push_str("  }\n}\n");
    std::fs::write(path, out)
}

/// The generation this run writes at: `JAHOB_BENCH_GEN` when set and valid
/// (a sweep), otherwise the file's current maximum (an ordinary run, which prunes
/// nothing). An invalid value warns and behaves like unset rather than silently
/// pruning the file.
fn run_generation(env: Option<&str>, current: u64) -> u64 {
    match env {
        Some(raw) => match raw.trim().parse::<u64>() {
            Ok(gen) => gen,
            Err(_) => {
                eprintln!(
                    "warning: JAHOB_BENCH_GEN={raw:?} is not a non-negative integer; \
                     keeping generation {current}"
                );
                current
            }
        },
        None => current,
    }
}

fn upsert<T: Copy>(entries: &mut Stamped<T>, name: &str, generation: u64, value: T) {
    match entries.iter_mut().find(|(n, _, _)| n == name) {
        Some((_, gen, v)) => {
            *gen = generation;
            *v = value;
        }
        None => entries.push((name.to_string(), generation, value)),
    }
}

fn escape(name: &str) -> String {
    name.replace('\\', "\\\\").replace('"', "\\\"")
}

fn unescape(name: &str) -> String {
    name.replace("\\\"", "\"").replace("\\\\", "\\")
}

/// Parses a results file previously produced by [`write_results_to`]. The writer emits
/// exactly one entry per line, so a line-oriented scan suffices: bench lines look like
/// `"name": {"mean_ns": N, "min_ns": N, "max_ns": N, "samples": N, "gen": G}` and
/// metric lines like `"name": {"value": V, "gen": G}`. Schema-1 files (no `"gen"`
/// field, bare metric numbers) parse as generation 0, so the first gen-bumped sweep
/// retires every pre-schema-2 row. Anything unrecognised is ignored (the file is then
/// rewritten in the canonical shape).
type ParsedResults = (Stamped<BenchRecord>, Stamped<f64>);

fn parse_results(text: &str) -> ParsedResults {
    let mut benches = Vec::new();
    let mut metrics = Vec::new();
    let mut in_benches = false;
    let mut in_metrics = false;
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        if line.starts_with("\"benches\"") {
            in_benches = true;
            in_metrics = false;
            continue;
        }
        if line.starts_with("\"metrics\"") {
            in_metrics = true;
            in_benches = false;
            continue;
        }
        if line == "}" || line == "}," {
            in_benches = false;
            in_metrics = false;
            continue;
        }
        let Some((raw_name, rest)) = split_entry(line) else {
            continue;
        };
        let name = unescape(&raw_name);
        if in_benches {
            if let Some((record, gen)) = parse_record(rest) {
                upsert(&mut benches, &name, gen, record);
            }
        } else if in_metrics {
            if let Some((v, gen)) = parse_metric(rest) {
                upsert(&mut metrics, &name, gen, v);
            }
        }
    }
    (benches, metrics)
}

/// Parses a metric value: the schema-2 `{"value": V, "gen": G}` object, or a bare
/// schema-1 number (generation 0).
fn parse_metric(text: &str) -> Option<(f64, u64)> {
    let text = text.trim();
    let Some(fields) = text.strip_prefix('{').and_then(|t| t.strip_suffix('}')) else {
        return text.parse::<f64>().ok().map(|v| (v, 0));
    };
    let mut value = None;
    let mut gen = 0;
    for field in fields.split(',') {
        let (key, raw) = field.split_once(':')?;
        match key.trim().trim_matches('"') {
            "value" => value = Some(raw.trim().parse::<f64>().ok()?),
            "gen" => gen = raw.trim().parse::<u64>().ok()?,
            _ => return None,
        }
    }
    Some((value?, gen))
}

/// Splits a `"name": value` line into the raw (still escaped) name and the value text.
fn split_entry(line: &str) -> Option<(String, &str)> {
    let rest = line.strip_prefix('"')?;
    // Find the closing quote, honouring backslash escapes.
    let mut end = None;
    let mut escaped = false;
    for (i, c) in rest.char_indices() {
        if escaped {
            escaped = false;
        } else if c == '\\' {
            escaped = true;
        } else if c == '"' {
            end = Some(i);
            break;
        }
    }
    let end = end?;
    let value = rest[end + 1..].trim().strip_prefix(':')?;
    Some((rest[..end].to_string(), value.trim()))
}

fn parse_record(text: &str) -> Option<(BenchRecord, u64)> {
    let fields = text.trim().strip_prefix('{')?.strip_suffix('}')?;
    let mut record = BenchRecord {
        mean_ns: 0,
        min_ns: 0,
        max_ns: 0,
        samples: 0,
    };
    let mut gen = 0;
    for field in fields.split(',') {
        let (key, value) = field.split_once(':')?;
        let value = value.trim().parse::<u64>().ok()?;
        match key.trim().trim_matches('"') {
            "mean_ns" => record.mean_ns = value,
            "min_ns" => record.min_ns = value,
            "max_ns" => record.max_ns = value,
            "samples" => record.samples = value,
            "gen" => gen = value,
            _ => return None,
        }
    }
    Some((record, gen))
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the routine to time.
#[derive(Debug)]
pub struct Bencher {
    iters_per_sample: u64,
    target_sample_time: Duration,
    samples: Vec<(Duration, u64)>,
}

impl Bencher {
    /// Times one sample of `routine`, recording total elapsed time and iteration count.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(routine());
        }
        let elapsed = start.elapsed();
        self.samples.push((elapsed, self.iters_per_sample));
        // Adapt the iteration count so one sample costs roughly the per-sample share of
        // the measurement budget.
        if elapsed < self.target_sample_time / 2 {
            self.iters_per_sample = (self.iters_per_sample * 2).min(1 << 20);
        } else if elapsed > self.target_sample_time * 2 && self.iters_per_sample > 1 {
            self.iters_per_sample /= 2;
        }
    }
}

/// Declares a benchmark group function, mirroring criterion's two macro forms.
#[macro_export]
macro_rules! criterion_group {
    (
        name = $name:ident;
        config = $config:expr;
        targets = $($target:path),+ $(,)?
    ) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark `main` that runs the listed groups, then merges the
/// collected measurements into `BENCH_results.json` (see [`write_results`]).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::write_results();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fills the process-global registry with one bench record and one metric,
    /// replacing whatever a previous write left behind.
    fn stage(record: BenchRecord) {
        let mut registry = registry().lock().expect("bench registry");
        registry.benches.clear();
        registry.metrics.clear();
        registry.benches.push(("fig7/new".to_string(), record));
        registry.metrics.push(("suite_proved".to_string(), 153.0));
    }

    /// The single test driving `write_results_to` end to end: the registry and the
    /// `JAHOB_BENCH_GEN` variable are process-global, so the merge, upgrade and
    /// prune scenarios run as one sequence rather than racing in parallel tests.
    #[test]
    fn results_file_round_trips_merges_and_prunes_stale_generations() {
        let dir = std::env::temp_dir().join(format!("criterion_shim_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("BENCH_results.json");
        let _ = std::fs::remove_file(&path);
        std::env::remove_var("JAHOB_BENCH_GEN");

        // Seed the file with a schema-1 bench and metric from a "previous binary".
        std::fs::write(
            &path,
            concat!(
                "{\n  \"schema\": \"jahob-bench-results/1\",\n  \"benches\": {\n",
                "    \"suite/old\": {\"mean_ns\": 42, \"min_ns\": 40, \"max_ns\": 44, \"samples\": 10}\n",
                "  },\n  \"metrics\": {\n    \"suite_proved\": 152\n  }\n}\n"
            ),
        )
        .expect("seed file");

        let record = BenchRecord {
            mean_ns: 7,
            min_ns: 6,
            max_ns: 8,
            samples: 3,
        };
        stage(record);
        write_results_to(&path).expect("write merged results");

        // An ordinary (no-sweep) run merges: the schema-1 row upgrades to
        // generation 0 and survives alongside the newly measured row.
        let text = std::fs::read_to_string(&path).expect("read back");
        let (benches, metrics) = parse_results(&text);
        assert_eq!(benches.len(), 2, "old entry kept, new entry added: {text}");
        assert_eq!(
            benches
                .iter()
                .find(|(n, _, _)| n == "suite/old")
                .map(|(_, gen, r)| (*gen, r.mean_ns)),
            Some((0, 42))
        );
        assert_eq!(
            benches
                .iter()
                .find(|(n, _, _)| n == "fig7/new")
                .map(|(_, _, r)| r.samples),
            Some(3)
        );
        assert_eq!(metrics, vec![("suite_proved".to_string(), 0, 153.0)]);

        // The file is well-formed for downstream JSON consumers: balanced braces, a
        // schema marker, and the sections CI greps for.
        assert!(text.starts_with('{') && text.trim_end().ends_with('}'));
        assert!(text.contains("\"schema\": \"jahob-bench-results/2\""));
        assert_eq!(
            text.matches('{').count(),
            text.matches('}').count(),
            "unbalanced braces: {text}"
        );

        // A gen-bumped sweep prunes rows it did not re-measure: `suite/old` (a
        // renamed or deleted bench id) disappears; the re-measured rows land at the
        // new generation.
        stage(record);
        std::env::set_var("JAHOB_BENCH_GEN", "1");
        let swept = write_results_to(&path);
        std::env::remove_var("JAHOB_BENCH_GEN");
        swept.expect("write swept results");
        let (benches, metrics) = parse_results(&std::fs::read_to_string(&path).expect("read back"));
        assert_eq!(
            benches
                .iter()
                .map(|(n, g, _)| (n.as_str(), *g))
                .collect::<Vec<_>>(),
            vec![("fig7/new", 1)],
            "stale row pruned by the sweep"
        );
        assert_eq!(metrics, vec![("suite_proved".to_string(), 1, 153.0)]);

        // A later binary of the same sweep (same generation, env unset after an
        // interrupted sweep is also this case) merges without pruning the first
        // binary's rows.
        {
            let mut registry = registry().lock().expect("bench registry");
            registry.benches.clear();
            registry.metrics.clear();
            registry.benches.push(("suite/other".to_string(), record));
        }
        write_results_to(&path).expect("write second binary");
        let (benches, _) = parse_results(&std::fs::read_to_string(&path).expect("read back"));
        assert_eq!(
            benches
                .iter()
                .map(|(n, g, _)| (n.as_str(), *g))
                .collect::<Vec<_>>(),
            vec![("fig7/new", 1), ("suite/other", 1)],
            "same-generation runs never prune"
        );

        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
        let mut registry = registry().lock().expect("bench registry");
        registry.benches.clear();
        registry.metrics.clear();
    }

    #[test]
    fn run_generation_accepts_only_a_valid_env_override() {
        assert_eq!(run_generation(None, 3), 3);
        assert_eq!(run_generation(Some("7"), 3), 7);
        assert_eq!(run_generation(Some(" 4 "), 3), 4);
        // Invalid values warn and behave like unset instead of silently pruning.
        assert_eq!(run_generation(Some("-1"), 3), 3);
        assert_eq!(run_generation(Some("sweep"), 3), 3);
    }

    #[test]
    fn entry_lines_split_and_parse() {
        let (name, rest) = split_entry(
            "\"ablation/route_on\": {\"mean_ns\": 1, \"min_ns\": 1, \"max_ns\": 2, \"samples\": 5, \"gen\": 4}",
        )
        .expect("entry splits");
        assert_eq!(name, "ablation/route_on");
        let (record, gen) = parse_record(rest).expect("record parses");
        assert_eq!((record.mean_ns, record.samples, gen), (1, 5, 4));
        // Schema-1 rows carry no generation and parse as generation 0.
        let (_, gen) =
            parse_record("{\"mean_ns\": 1, \"min_ns\": 1, \"max_ns\": 2, \"samples\": 5}")
                .expect("v1 record parses");
        assert_eq!(gen, 0);
        assert_eq!(
            parse_metric("{\"value\": 153, \"gen\": 2}"),
            Some((153.0, 2))
        );
        assert_eq!(parse_metric("152"), Some((152.0, 0)));
        assert!(parse_metric("{\"samples\": 3}").is_none());
        assert!(split_entry("},").is_none());
        assert_eq!(unescape(&escape("a\"b\\c")), "a\"b\\c");
    }
}
