//! A minimal, dependency-free, offline shim of the [criterion](https://crates.io/crates/criterion)
//! API surface used by this workspace's benches.
//!
//! The build environment has no access to crates.io, so this vendored crate implements
//! just enough of criterion for `cargo bench`: [`Criterion`] with the builder methods the
//! benches call, [`Bencher::iter`], and the [`criterion_group!`]/[`criterion_main!`]
//! macros. Timing is a straightforward warm-up + fixed-sample mean/min/max measurement
//! printed to stdout; there is no statistical analysis, plotting or HTML report.

use std::time::{Duration, Instant};

/// Re-export of the standard opaque value barrier, matching `criterion::black_box`.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Benchmark driver. Created by [`criterion_group!`]'s `config` expression.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            warm_up_time: Duration::from_secs(3),
            measurement_time: Duration::from_secs(5),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the duration of the untimed warm-up phase.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the target duration of the timed phase.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark: warms up, then times `sample_size` samples and prints a
    /// `name  time: [min mean max]` summary line.
    pub fn bench_function<S, F>(&mut self, id: S, mut f: F) -> &mut Self
    where
        S: AsRef<str>,
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            iters_per_sample: 1,
            target_sample_time: self.measurement_time / self.sample_size.max(1) as u32,
            samples: Vec::new(),
        };

        // Warm-up: run the routine untimed until the warm-up budget is spent, scaling
        // the per-sample iteration count to keep each sample fast but measurable.
        let warm_up_start = Instant::now();
        let mut iterations: u64 = 0;
        while warm_up_start.elapsed() < self.warm_up_time {
            f(&mut bencher);
            iterations += bencher.iters_per_sample;
            if iterations >= 1_000_000 {
                break;
            }
        }
        bencher.samples.clear();

        // Measurement: collect `sample_size` samples, but never run past roughly the
        // configured measurement budget.
        let measure_start = Instant::now();
        while bencher.samples.len() < self.sample_size
            && measure_start.elapsed() < self.measurement_time
        {
            f(&mut bencher);
        }
        if bencher.samples.is_empty() {
            f(&mut bencher); // Always collect at least one sample.
        }

        let per_iter: Vec<Duration> = bencher
            .samples
            .iter()
            .map(|(elapsed, iters)| *elapsed / (*iters).max(1) as u32)
            .collect();
        let min = per_iter.iter().min().copied().unwrap_or_default();
        let max = per_iter.iter().max().copied().unwrap_or_default();
        let mean = per_iter.iter().sum::<Duration>() / per_iter.len().max(1) as u32;
        println!(
            "{:<40} time: [{:>12?} {:>12?} {:>12?}]  ({} samples)",
            id.as_ref(),
            min,
            mean,
            max,
            per_iter.len()
        );
        self
    }
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the routine to time.
#[derive(Debug)]
pub struct Bencher {
    iters_per_sample: u64,
    target_sample_time: Duration,
    samples: Vec<(Duration, u64)>,
}

impl Bencher {
    /// Times one sample of `routine`, recording total elapsed time and iteration count.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(routine());
        }
        let elapsed = start.elapsed();
        self.samples.push((elapsed, self.iters_per_sample));
        // Adapt the iteration count so one sample costs roughly the per-sample share of
        // the measurement budget.
        if elapsed < self.target_sample_time / 2 {
            self.iters_per_sample = (self.iters_per_sample * 2).min(1 << 20);
        } else if elapsed > self.target_sample_time * 2 && self.iters_per_sample > 1 {
            self.iters_per_sample /= 2;
        }
    }
}

/// Declares a benchmark group function, mirroring criterion's two macro forms.
#[macro_export]
macro_rules! criterion_group {
    (
        name = $name:ident;
        config = $config:expr;
        targets = $($target:path),+ $(,)?
    ) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
