//! A minimal, dependency-free, offline shim of the [proptest](https://crates.io/crates/proptest)
//! API surface used by this workspace.
//!
//! The build environment has no access to crates.io, so this vendored crate implements
//! just enough of proptest for the workspace's property tests: the [`Strategy`] trait
//! with `prop_map`/`prop_flat_map`/`prop_recursive`/`boxed`, strategies for integer
//! ranges, tuples, booleans and vectors, and the [`proptest!`]/[`prop_oneof!`]/
//! `prop_assert*` macros.
//!
//! Differences from real proptest:
//! - no shrinking: a failing case reports its deterministic case index instead of a
//!   minimised counterexample;
//! - generation is fully deterministic (splitmix64 keyed by test case index), so CI
//!   failures always reproduce locally.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// Deterministic splitmix64 generator driving all value generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates the generator for one test case. The stream is keyed by the test name's
    /// hash and the case index so every case of every test is distinct but reproducible.
    pub fn for_case(test_key: u64, case: u64) -> Self {
        TestRng {
            state: test_key
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(case.wrapping_mul(0xbf58_476d_1ce4_e5b9))
                .wrapping_add(0x94d0_49bb_1331_11eb),
        }
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform value in `[0, bound)` over 128 bits; `bound` must be non-zero.
    pub fn below_u128(&mut self, bound: u128) -> u128 {
        let raw = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
        raw % bound
    }
}

/// Error raised by a failing `prop_assert*` inside a property test body.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    /// Human-readable failure description.
    pub message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Result type of a property test body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Per-test configuration; only the case count is honoured by this shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` generated inputs.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of values of type `Self::Value`.
///
/// Unlike real proptest there is no shrinking: a strategy is just a deterministic
/// function from an RNG state to a value.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns for it.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Recursive strategy: `self` is the leaf case and `expand` builds one extra level
    /// on top of an inner strategy, up to `depth` levels. `desired_size` and
    /// `expected_branch_size` are accepted for API compatibility but unused.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        expand: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2 + 'static,
    {
        let expand: Rc<ExpandFn<Self::Value>> = Rc::new(move |inner| expand(inner).boxed());
        Recursive {
            base: self.boxed(),
            depth,
            expand,
        }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Object-safe view of [`Strategy`] backing [`BoxedStrategy`].
trait DynStrategy<V> {
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A cheaply clonable, type-erased strategy.
pub struct BoxedStrategy<V>(Rc<dyn DynStrategy<V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V> std::fmt::Debug for BoxedStrategy<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate_dyn(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

type ExpandFn<V> = dyn Fn(BoxedStrategy<V>) -> BoxedStrategy<V>;

/// See [`Strategy::prop_recursive`].
pub struct Recursive<V> {
    base: BoxedStrategy<V>,
    depth: u32,
    expand: Rc<ExpandFn<V>>,
}

impl<V> Clone for Recursive<V> {
    fn clone(&self) -> Self {
        Recursive {
            base: self.base.clone(),
            depth: self.depth,
            expand: Rc::clone(&self.expand),
        }
    }
}

impl<V: 'static> Strategy for Recursive<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        // Bias towards leaves so that generated trees stay small, and always fall back
        // to the leaf strategy once the depth budget is spent.
        if self.depth == 0 || rng.below(4) == 0 {
            self.base.generate(rng)
        } else {
            let inner = Recursive {
                base: self.base.clone(),
                depth: self.depth - 1,
                expand: Rc::clone(&self.expand),
            };
            (self.expand)(inner.boxed()).generate(rng)
        }
    }
}

/// Union of same-typed strategies; used by [`prop_oneof!`].
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union from pre-boxed options; panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Clone for Union<V> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
        }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                let off = rng.below_u128(width);
                ((self.start as i128).wrapping_add(off as i128)) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let width = (*self.end() as i128)
                    .wrapping_sub(*self.start() as i128)
                    .wrapping_add(1) as u128;
                let off = rng.below_u128(width);
                ((*self.start() as i128).wrapping_add(off as i128)) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// i128 ranges need their own width computation (the macro above funnels through i128
// subtraction, which would overflow for full-width i128 bounds).
impl Strategy for Range<i128> {
    type Value = i128;
    fn generate(&self, rng: &mut TestRng) -> i128 {
        assert!(self.start < self.end, "empty range strategy");
        let width = self.end.wrapping_sub(self.start) as u128;
        let off = rng.below_u128(width);
        self.start.wrapping_add(off as i128)
    }
}

impl Strategy for RangeInclusive<i128> {
    type Value = i128;
    fn generate(&self, rng: &mut TestRng) -> i128 {
        assert!(self.start() <= self.end(), "empty range strategy");
        let width = self.end().wrapping_sub(*self.start()).wrapping_add(1) as u128;
        let off = rng.below_u128(width);
        self.start().wrapping_add(off as i128)
    }
}

macro_rules! tuple_strategy {
    ($(($($n:ident),+))*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($n,)+) = self;
                ($($n.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Boolean strategies (`prop::bool::ANY`).
pub mod bool {
    use super::{Strategy, TestRng};

    /// Strategy yielding uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The canonical boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 0
        }
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Admissible element counts for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for vectors whose elements come from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors with `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Strategy combinators re-exported under their proptest module path.
pub mod strategy {
    pub use super::{BoxedStrategy, Just, Map, Recursive, Strategy, Union};
}

/// The proptest prelude: everything the `proptest!` tests import.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

/// Picks uniformly between the listed strategies (all must yield the same type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Fails the current test case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current test case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}

/// Fails the current test case if the operands compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }` item expands to
/// a zero-argument function running the body over deterministically generated inputs.
///
/// As with real proptest, write `#[test]` explicitly on every item — the macro re-emits
/// the attributes you wrote but does not add `#[test]` itself.
#[macro_export]
macro_rules! proptest {
    (@tests { $config:expr }) => {};
    (
        @tests { $config:expr }
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let strategies = ($($strategy,)+);
            // Key the RNG stream by the test name so sibling tests see distinct inputs.
            let test_key: u64 = {
                let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                for b in stringify!($name).bytes() {
                    h ^= b as u64;
                    h = h.wrapping_mul(0x0000_0100_0000_01b3);
                }
                h
            };
            for case in 0..config.cases {
                let mut rng = $crate::TestRng::for_case(test_key, case as u64);
                let ($($pat,)+) = $crate::Strategy::generate(&strategies, &mut rng);
                let outcome: $crate::TestCaseResult = (|| {
                    { $body }
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest case #{case} of {} failed: {}\n(deterministic shim: rerun reproduces the same inputs)",
                        stringify!($name),
                        e
                    );
                }
            }
        }
        $crate::proptest!(@tests { $config } $($rest)*);
    };
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@tests { $config } $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@tests { $crate::ProptestConfig::default() } $($rest)*);
    };
}
