//! A minimal, dependency-free, offline shim of the [proptest](https://crates.io/crates/proptest)
//! API surface used by this workspace.
//!
//! The build environment has no access to crates.io, so this vendored crate implements
//! just enough of proptest for the workspace's property tests: the [`Strategy`] trait
//! with `prop_map`/`prop_flat_map`/`prop_recursive`/`boxed`, strategies for integer
//! ranges, tuples, booleans and vectors, and the [`proptest!`]/[`prop_oneof!`]/
//! `prop_assert*` macros.
//!
//! Differences from real proptest:
//! - only minimal shrinking: integers halve toward the range start (and decrement),
//!   booleans shrink to `false`, vectors drop or shrink elements, and tuples shrink
//!   component-wise. `prop_map`ped values shrink by shrinking the *input* and
//!   re-applying the mapping closure (the strategy remembers which input produced
//!   each output it handed out, which is why mapped outputs must be
//!   `Clone + PartialEq`). Values produced through `prop_flat_map`/`prop_oneof!`
//!   still do not shrink (those combinators keep no reverse mapping), so a failing
//!   case there reports the originally generated value;
//! - generation is fully deterministic (splitmix64 keyed by test case index), so CI
//!   failures always reproduce locally.

use std::cell::RefCell;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// Deterministic splitmix64 generator driving all value generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates the generator for one test case. The stream is keyed by the test name's
    /// hash and the case index so every case of every test is distinct but reproducible.
    pub fn for_case(test_key: u64, case: u64) -> Self {
        TestRng {
            state: test_key
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(case.wrapping_mul(0xbf58_476d_1ce4_e5b9))
                .wrapping_add(0x94d0_49bb_1331_11eb),
        }
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform value in `[0, bound)` over 128 bits; `bound` must be non-zero.
    pub fn below_u128(&mut self, bound: u128) -> u128 {
        let raw = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
        raw % bound
    }
}

/// Error raised by a failing `prop_assert*` inside a property test body.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    /// Human-readable failure description.
    pub message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Result type of a property test body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Per-test configuration; only the case count is honoured by this shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` generated inputs.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of values of type `Self::Value`.
///
/// A strategy is a deterministic function from an RNG state to a value, plus an
/// optional [`Strategy::shrink`] step used to minimise failing cases.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Proposes strictly "smaller" candidate values derived from a failing `value`,
    /// most aggressive first. The default is no candidates (no shrinking); combinator
    /// strategies without a reverse mapping (`prop_map` and friends) keep the default.
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let _ = value;
        Vec::new()
    }

    /// Maps generated values through `f`. The mapped strategy shrinks by shrinking
    /// the *input* value and re-applying `f`, so `O` must be `Clone + PartialEq`
    /// (to recognise which previously produced output is being shrunk).
    fn prop_map<O, F>(self, f: F) -> Map<Self, O, F>
    where
        Self: Sized + Strategy,
        Self::Value: Clone,
        O: Clone + PartialEq,
        F: Fn(Self::Value) -> O,
    {
        Map {
            inner: self,
            f,
            memo: RefCell::new(Vec::new()),
        }
    }

    /// Generates a value, then generates from the strategy `f` returns for it.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Recursive strategy: `self` is the leaf case and `expand` builds one extra level
    /// on top of an inner strategy, up to `depth` levels. `desired_size` and
    /// `expected_branch_size` are accepted for API compatibility but unused.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        expand: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2 + 'static,
    {
        let expand: Rc<ExpandFn<Self::Value>> = Rc::new(move |inner| expand(inner).boxed());
        Recursive {
            base: self.boxed(),
            depth,
            expand,
        }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Object-safe view of [`Strategy`] backing [`BoxedStrategy`].
trait DynStrategy<V> {
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
    fn shrink_dyn(&self, value: &V) -> Vec<V>;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
    fn shrink_dyn(&self, value: &S::Value) -> Vec<S::Value> {
        self.shrink(value)
    }
}

/// A cheaply clonable, type-erased strategy.
pub struct BoxedStrategy<V>(Rc<dyn DynStrategy<V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V> std::fmt::Debug for BoxedStrategy<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate_dyn(rng)
    }
    fn shrink(&self, value: &V) -> Vec<V> {
        self.0.shrink_dyn(value)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
///
/// The strategy remembers which input produced each output it handed out (bounded, in
/// a `RefCell`), which is what lets [`Strategy::shrink`] *forward shrinks through the
/// mapping closure*: the failing output is looked up, its input is shrunk with the
/// inner strategy, and every candidate input is re-mapped through `f`.
pub struct Map<S: Strategy, O, F> {
    inner: S,
    f: F,
    memo: RefCell<Vec<(S::Value, O)>>,
}

/// Upper bound on remembered (input, output) pairs per `Map`; old entries are evicted
/// first. Lookup misses merely stop shrinking at this combinator, so eviction is safe.
const MAP_MEMO_CAP: usize = 1024;

impl<S, O, F> Clone for Map<S, O, F>
where
    S: Strategy + Clone,
    F: Clone,
{
    fn clone(&self) -> Self {
        Map {
            inner: self.inner.clone(),
            f: self.f.clone(),
            memo: RefCell::new(Vec::new()),
        }
    }
}

impl<S: Strategy, O, F> std::fmt::Debug for Map<S, O, F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Map")
    }
}

impl<S, O, F> Strategy for Map<S, O, F>
where
    S: Strategy,
    S::Value: Clone,
    O: Clone + PartialEq,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        let input = self.inner.generate(rng);
        let output = (self.f)(input.clone());
        self.remember(input, output.clone());
        output
    }
    fn shrink(&self, value: &O) -> Vec<O> {
        // Find the input that produced `value` (newest first, so a value reached by
        // shrinking resolves to its own input, not an earlier identical output).
        let input = self
            .memo
            .borrow()
            .iter()
            .rev()
            .find(|(_, output)| output == value)
            .map(|(input, _)| input.clone());
        let Some(input) = input else {
            return Vec::new();
        };
        self.inner
            .shrink(&input)
            .into_iter()
            .map(|candidate| {
                let output = (self.f)(candidate.clone());
                self.remember(candidate, output.clone());
                output
            })
            .collect()
    }
}

impl<S, O, F> Map<S, O, F>
where
    S: Strategy,
{
    fn remember(&self, input: S::Value, output: O) {
        let mut memo = self.memo.borrow_mut();
        if memo.len() >= MAP_MEMO_CAP {
            memo.drain(..MAP_MEMO_CAP / 2);
        }
        memo.push((input, output));
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

type ExpandFn<V> = dyn Fn(BoxedStrategy<V>) -> BoxedStrategy<V>;

/// See [`Strategy::prop_recursive`].
pub struct Recursive<V> {
    base: BoxedStrategy<V>,
    depth: u32,
    expand: Rc<ExpandFn<V>>,
}

impl<V> Clone for Recursive<V> {
    fn clone(&self) -> Self {
        Recursive {
            base: self.base.clone(),
            depth: self.depth,
            expand: Rc::clone(&self.expand),
        }
    }
}

impl<V: 'static> Strategy for Recursive<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        // Bias towards leaves so that generated trees stay small, and always fall back
        // to the leaf strategy once the depth budget is spent.
        if self.depth == 0 || rng.below(4) == 0 {
            self.base.generate(rng)
        } else {
            let inner = Recursive {
                base: self.base.clone(),
                depth: self.depth - 1,
                expand: Rc::clone(&self.expand),
            };
            (self.expand)(inner.boxed()).generate(rng)
        }
    }
}

/// Union of same-typed strategies; used by [`prop_oneof!`].
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union from pre-boxed options; panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Clone for Union<V> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
        }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// Shrink candidates of an integer within `[start, value]`: the range start (most
/// aggressive), the midpoint between start and the value, and the predecessor. The
/// greedy shrink loop in [`proptest!`] combines halving (to cross large distances in
/// logarithmically many steps) with the decrement (to reach the exact boundary).
fn shrink_int(start: i128, value: i128) -> Vec<i128> {
    if value == start {
        return Vec::new();
    }
    let mut out = vec![start];
    let mid = start + (value - start) / 2;
    if mid != start && mid != value {
        out.push(mid);
    }
    if value - 1 != start && value - 1 != mid {
        out.push(value - 1);
    }
    out
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                let off = rng.below_u128(width);
                ((self.start as i128).wrapping_add(off as i128)) as $t
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_int(self.start as i128, *value as i128)
                    .into_iter()
                    .map(|v| v as $t)
                    .collect()
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let width = (*self.end() as i128)
                    .wrapping_sub(*self.start() as i128)
                    .wrapping_add(1) as u128;
                let off = rng.below_u128(width);
                ((*self.start() as i128).wrapping_add(off as i128)) as $t
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_int(*self.start() as i128, *value as i128)
                    .into_iter()
                    .map(|v| v as $t)
                    .collect()
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// i128 ranges need their own width computation (the macro above funnels through i128
// subtraction, which would overflow for full-width i128 bounds).
/// [`shrink_int`] for full-width `i128` bounds, where the distance to the range start
/// only fits in `u128`.
fn shrink_i128(start: i128, value: i128) -> Vec<i128> {
    if value == start {
        return Vec::new();
    }
    let mut out = vec![start];
    let mid = start.wrapping_add((value.wrapping_sub(start) as u128 / 2) as i128);
    if mid != start && mid != value {
        out.push(mid);
    }
    let dec = value - 1;
    if dec != start && dec != mid {
        out.push(dec);
    }
    out
}

impl Strategy for Range<i128> {
    type Value = i128;
    fn generate(&self, rng: &mut TestRng) -> i128 {
        assert!(self.start < self.end, "empty range strategy");
        let width = self.end.wrapping_sub(self.start) as u128;
        let off = rng.below_u128(width);
        self.start.wrapping_add(off as i128)
    }
    fn shrink(&self, value: &i128) -> Vec<i128> {
        shrink_i128(self.start, *value)
    }
}

impl Strategy for RangeInclusive<i128> {
    type Value = i128;
    fn generate(&self, rng: &mut TestRng) -> i128 {
        assert!(self.start() <= self.end(), "empty range strategy");
        let width = self.end().wrapping_sub(*self.start()).wrapping_add(1) as u128;
        let off = rng.below_u128(width);
        self.start().wrapping_add(off as i128)
    }
    fn shrink(&self, value: &i128) -> Vec<i128> {
        shrink_i128(*self.start(), *value)
    }
}

macro_rules! tuple_strategy {
    ($(($($n:ident : $idx:tt),+))*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+)
        where
            $($n::Value: Clone),+
        {
            type Value = ($($n::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                // Component-wise: each candidate shrinks exactly one position.
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = cand;
                        out.push(next);
                    }
                )+
                out
            }
        }
    )*};
}

tuple_strategy! {
    (A:0)
    (A:0, B:1)
    (A:0, B:1, C:2)
    (A:0, B:1, C:2, D:3)
    (A:0, B:1, C:2, D:3, E:4)
    (A:0, B:1, C:2, D:3, E:4, F:5)
}

/// Boolean strategies (`prop::bool::ANY`).
pub mod bool {
    use super::{Strategy, TestRng};

    /// Strategy yielding uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The canonical boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 0
        }
        fn shrink(&self, value: &bool) -> Vec<bool> {
            if *value {
                vec![false]
            } else {
                Vec::new()
            }
        }
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Admissible element counts for [`vec()`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for vectors whose elements come from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors with `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let mut out = Vec::new();
            // First try removing each element (while the length stays admissible)...
            if value.len() > self.size.lo {
                for i in 0..value.len() {
                    let mut shorter = value.clone();
                    shorter.remove(i);
                    out.push(shorter);
                }
            }
            // ...then shrinking each element in place.
            for (i, v) in value.iter().enumerate() {
                for cand in self.element.shrink(v) {
                    let mut next = value.clone();
                    next[i] = cand;
                    out.push(next);
                }
            }
            out
        }
    }
}

/// Strategy combinators re-exported under their proptest module path.
pub mod strategy {
    pub use super::{BoxedStrategy, Just, Map, Recursive, Strategy, Union};
}

/// The proptest prelude: everything the `proptest!` tests import.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

/// Drives one property test: runs `body` over `config.cases` deterministically
/// generated inputs and, on failure, greedily shrinks the failing input through
/// [`Strategy::shrink`] before panicking with the minimal counterexample.
///
/// This is the engine behind the [`proptest!`] macro (it has no counterpart in the
/// real proptest API; the macro calls it so the closure's parameter type is pinned by
/// this signature).
pub fn run_property<S, F>(name: &str, config: ProptestConfig, strategies: &S, body: F)
where
    S: Strategy,
    S::Value: Clone + std::fmt::Debug,
    F: Fn(S::Value) -> TestCaseResult,
{
    // Key the RNG stream by the test name so sibling tests see distinct inputs.
    let mut test_key: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        test_key ^= b as u64;
        test_key = test_key.wrapping_mul(0x0000_0100_0000_01b3);
    }
    for case in 0..config.cases {
        let mut rng = TestRng::for_case(test_key, case as u64);
        let values = strategies.generate(&mut rng);
        if let Err(e) = body(values.clone()) {
            // Greedy shrink: repeatedly move to the first still-failing candidate,
            // within a bounded budget of body re-runs.
            let mut best = values;
            let mut best_err = e;
            let mut budget: u32 = 256;
            'shrinking: while budget > 0 {
                for cand in strategies.shrink(&best) {
                    if budget == 0 {
                        break 'shrinking;
                    }
                    budget -= 1;
                    if let Err(e2) = body(cand.clone()) {
                        best = cand;
                        best_err = e2;
                        continue 'shrinking;
                    }
                }
                break;
            }
            panic!(
                "proptest case #{case} of {name} failed: {best_err}\nminimal failing input (after shrinking): {best:?}\n(deterministic shim: rerun reproduces the same inputs)"
            );
        }
    }
}

/// Picks uniformly between the listed strategies (all must yield the same type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Fails the current test case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current test case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}

/// Fails the current test case if the operands compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }` item expands to
/// a zero-argument function running the body over deterministically generated inputs.
///
/// On failure, the inputs are greedily shrunk through [`Strategy::shrink`] (halving
/// integers, removing vector elements, component by component for tuples) and the
/// smallest still-failing counterexample is reported. Generated values must therefore
/// be `Clone + Debug` — true for every strategy this shim ships.
///
/// As with real proptest, write `#[test]` explicitly on every item — the macro re-emits
/// the attributes you wrote but does not add `#[test]` itself.
#[macro_export]
macro_rules! proptest {
    (@tests { $config:expr }) => {};
    (
        @tests { $config:expr }
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let strategies = ($($strategy,)+);
            $crate::run_property(stringify!($name), config, &strategies, |values| {
                let ($($pat,)+) = values;
                { $body }
                ::std::result::Result::Ok(())
            });
        }
        $crate::proptest!(@tests { $config } $($rest)*);
    };
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@tests { $config } $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@tests { $crate::ProptestConfig::default() } $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_shrink_halves_toward_the_range_start() {
        let candidates = (0u32..1000).shrink(&800);
        assert_eq!(candidates, vec![0, 400, 799]);
        assert!((0u32..1000).shrink(&0).is_empty());
        assert_eq!((5i64..=10).shrink(&6), vec![5]);
        assert_eq!((-8i32..8).shrink(&-6), vec![-8, -7]);
    }

    #[test]
    fn vector_shrink_removes_and_shrinks_elements() {
        let strategy = collection::vec(0u8..10, 1..=3);
        let candidates = strategy.shrink(&vec![4, 9]);
        // Two removals first, then element-wise integer shrinks.
        assert!(candidates.contains(&vec![9]));
        assert!(candidates.contains(&vec![4]));
        assert!(candidates.contains(&vec![0, 9]));
        assert!(candidates.contains(&vec![4, 0]));
        // The minimum length is respected.
        assert!(strategy.shrink(&vec![7]).iter().all(|v| !v.is_empty()));
    }

    #[test]
    fn boolean_and_tuple_shrinking_compose() {
        let strategy = (bool::ANY, 0u8..100);
        let candidates = strategy.shrink(&(true, 10));
        assert!(candidates.contains(&(false, 10)));
        assert!(candidates.contains(&(true, 0)));
    }

    // A deliberately failing property (any x >= 17 fails): used below to check that
    // the macro reports the shrunk boundary value, not the originally generated one.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        fn shrinks_to_the_boundary(x in 0u32..100_000) {
            prop_assert!(x < 17, "x = {x} is too big");
        }
    }

    #[test]
    fn failing_cases_report_a_minimal_counterexample() {
        let panic =
            std::panic::catch_unwind(shrinks_to_the_boundary).expect_err("the property must fail");
        let message = panic
            .downcast_ref::<String>()
            .expect("panic carries a formatted message");
        assert!(
            message.contains("minimal failing input (after shrinking): (17,)"),
            "unexpected report: {message}"
        );
    }

    #[test]
    fn map_shrinks_through_the_closure() {
        let strategy = (0u32..1000).prop_map(|x| x * 2 + 1);
        let value = strategy.generate(&mut TestRng::for_case(7, 0));
        // Shrink candidates are the mapped images of the input's shrink candidates —
        // all odd, all smaller than the value (for a monotone mapping).
        let candidates = strategy.shrink(&value);
        assert!(
            !candidates.is_empty() || value == 1,
            "mapped values must shrink"
        );
        assert!(candidates.iter().all(|c| c % 2 == 1), "{candidates:?}");
        assert!(candidates.contains(&1), "most aggressive candidate maps 0");
        // A value the strategy never produced cannot be resolved to an input.
        assert!(strategy.shrink(&999_999).is_empty());
    }

    // A deliberately failing property through `prop_map` (fails for inputs >= 17,
    // i.e. outputs >= 35): the shrink must walk through the mapping closure and
    // report the mapped boundary value, not the original random output.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        fn mapped_shrinks_to_the_boundary(x in (0u32..100_000).prop_map(|x| 2 * x + 1)) {
            prop_assert!(x < 35, "x = {x} is too big");
        }
    }

    #[test]
    fn mapped_failing_cases_report_a_minimal_counterexample() {
        let panic = std::panic::catch_unwind(mapped_shrinks_to_the_boundary)
            .expect_err("the property must fail");
        let message = panic
            .downcast_ref::<String>()
            .expect("panic carries a formatted message");
        assert!(
            message.contains("minimal failing input (after shrinking): (35,)"),
            "prop_map shrinking should reach the mapped boundary 2*17+1: {message}"
        );
    }
}
