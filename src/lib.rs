//! Umbrella crate for the Jahob reproduction workspace.
//!
//! Re-exports the public crates so the root `examples/` and `tests/` can use a single
//! dependency, plus the driver's [`prelude`] (the `Verifier` facade and the typed
//! configuration surface) as the recommended one-import entry point:
//!
//! ```
//! use jahob_repro::prelude::*;
//!
//! let verifier = Verifier::with_config(DispatcherConfig::builder().build());
//! let rows = verifier.verify_suite();
//! assert!(!rows.is_empty());
//! ```
//!
//! See the individual crates for documentation.
pub use jahob;
pub use jahob::prelude;
pub use jahob_arith as arith;
pub use jahob_automata as automata;
pub use jahob_bapa as bapa;
pub use jahob_folp as folp;
pub use jahob_frontend as frontend;
pub use jahob_logic as logic;
pub use jahob_mona as mona;
pub use jahob_provers as provers;
pub use jahob_smt as smt;
pub use jahob_vcgen as vcgen;
