//! Runs the whole data structure suite of §7 and prints the Figure 15-style table
//! (sequents proved per prover, per data structure, with verification times).
//!
//! Run with `cargo run --release --example verify_suite`.

use jahob_repro::jahob::{render_figure15, run_suite, VerifyOptions};

fn main() {
    let rows = run_suite(&VerifyOptions::default());
    println!("{}", render_figure15(&rows));
    let total: usize = rows.iter().map(|r| r.total_sequents).sum();
    let proved: usize = rows.iter().map(|r| r.proved_sequents).sum();
    println!("Across the suite: {proved} of {total} sequents proved automatically.");
}
