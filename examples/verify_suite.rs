//! Runs the whole data structure suite of §7 and prints the Figure 15-style table
//! (sequents proved per prover, per data structure, with verification times and the
//! result-cache hit rate).
//!
//! Run with `cargo run --release --example verify_suite`.
//!
//! The dispatcher knobs are read from the environment (see
//! `DispatcherConfig::with_env_overrides`): `JAHOB_THREADS=4 JAHOB_CACHE=on` runs the
//! work-stealing parallel path with the canonical-form result cache, `JAHOB_CACHE=off`
//! measures the uncached baseline, and `JAHOB_GRANULARITY=n` batches queue claims.

use jahob_repro::jahob::{render_figure15, run_suite, VerifyOptions};

fn main() {
    let options = VerifyOptions::default();
    println!(
        "dispatcher: threads={} cache={} granularity={}",
        options.dispatcher.threads, options.dispatcher.cache, options.dispatcher.granularity
    );
    let rows = run_suite(&options);
    println!("{}", render_figure15(&rows));
    let total: usize = rows.iter().map(|r| r.total_sequents).sum();
    let proved: usize = rows.iter().map(|r| r.proved_sequents).sum();
    println!("Across the suite: {proved} of {total} sequents proved automatically.");
}
