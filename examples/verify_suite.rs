//! Runs the whole data structure suite of §7 and prints the Figure 15-style table
//! (sequents proved per prover, per data structure, with verification times and the
//! result-cache hit rate).
//!
//! Run with `cargo run --release --example verify_suite`.
//!
//! The dispatcher knobs are read from the environment (see
//! `DispatcherConfig::with_env_overrides`): `JAHOB_THREADS=4 JAHOB_CACHE=on` runs the
//! work-stealing parallel path with the canonical-form result cache, `JAHOB_CACHE=off`
//! measures the uncached baseline, `JAHOB_GRANULARITY=n` batches queue claims, and
//! `JAHOB_CACHE_DIR=dir` warm-starts from (and flushes back to) the persistent proof
//! store — run the example twice with the same directory to see the second run answer
//! the suite from disk.

use jahob_repro::prelude::*;

fn main() {
    let verifier = Verifier::new();
    println!(
        "dispatcher: threads={} cache={} granularity={}",
        verifier.config().threads,
        verifier.config().cache,
        verifier.config().granularity
    );
    let rows = verifier.verify_suite();
    println!("{}", render_figure15(&rows));
    let total: usize = rows.iter().map(|r| r.total_sequents).sum();
    let proved: usize = rows.iter().map(|r| r.proved_sequents).sum();
    println!("Across the suite: {proved} of {total} sequents proved automatically.");
    if verifier.config().cache.persistent_dir().is_some() {
        let disk: usize = rows.iter().map(|r| r.cache_disk_hits).sum();
        println!("Persistent store: {disk} of {total} obligations answered from disk.");
        match verifier.flush() {
            Ok(entries) => println!("Persistent store flushed ({entries} verdict entries)."),
            Err(e) => eprintln!("warning: failed to flush the proof store: {e}"),
        }
    }
}
