//! Specifying and verifying a *new* data structure against the public API: a bounded
//! stack with a set-valued abstract state and a size bound, illustrating contracts,
//! ghost variables, class invariants and the verification report.
//!
//! Run with `cargo run --example custom_structure`.

use jahob_repro::frontend::{ClassDef, Expr, JavaType, Lvalue, MethodBuilder, Program, Stmt};
use jahob_repro::logic::parse_form;
use jahob_repro::prelude::*;

fn main() {
    let stack = ClassDef::new("BoundedStack")
        .static_field("elems", JavaType::ObjArray)
        .static_field("top", JavaType::Int)
        .ghost_var("content", "obj set", true)
        .invariant("topNonNeg", "0 <= top")
        .invariant("elemsNotNull", "elems ~= null")
        .invariant("topBound", "top <= Array.length elems")
        .method(
            MethodBuilder::public("push")
                .static_method()
                .param("x", JavaType::Ref("Object".into()))
                .requires("x ~= null & x ~: content & top < Array.length elems")
                .modifies(&["content"])
                .ensures("content = old content Un {x} & top = old top + 1")
                .body(vec![
                    Stmt::Assign(
                        Lvalue::ArrayElem(Expr::Static("elems".into()), Expr::Static("top".into())),
                        Expr::local("x"),
                    ),
                    Stmt::Assign(
                        Lvalue::Static("top".into()),
                        Expr::Plus(
                            Box::new(Expr::Static("top".into())),
                            Box::new(Expr::IntLit(1)),
                        ),
                    ),
                    Stmt::GhostAssign {
                        target: "content".into(),
                        receiver: None,
                        value: parse_form("content Un {x}").expect("ghost update"),
                    },
                ])
                .build(),
        );
    let program = Program::new(vec![stack]);
    let report = Verifier::new().verify(&program);
    println!("{}", report.render());
}
