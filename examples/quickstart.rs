//! Quickstart: verify a tiny annotated data structure end to end.
//!
//! Builds a singly linked list with a set interface and runs the full Jahob pipeline
//! (frontend → guarded commands → weakest preconditions → splitting → integrated
//! reasoning) through the one-call `Verifier` facade, printing a Figure 7-style
//! verification report per method.
//!
//! Run with `cargo run --example quickstart`.

use jahob_repro::prelude::*;

fn main() {
    let verifier = Verifier::new();
    let report = verifier.verify(&suite::singly_linked_list());
    println!("{}", report.render());
    println!(
        "{} of {} sequents proved.",
        report.proved_sequents(),
        report.total_sequents()
    );
}
