//! Quickstart: verify a tiny annotated data structure end to end.
//!
//! Builds a singly linked list with a set interface, runs the full Jahob pipeline
//! (frontend → guarded commands → weakest preconditions → splitting → integrated
//! reasoning) and prints a Figure 7-style verification report per method.
//!
//! Run with `cargo run --example quickstart`.

use jahob_repro::jahob::{verify_program, VerifyOptions};

fn main() {
    let program = jahob_repro::jahob::suite::singly_linked_list();
    let options = VerifyOptions::default();
    for result in verify_program(&program, &options) {
        println!("{}", result.render());
    }
}
