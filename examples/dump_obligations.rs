//! Dumps the proof obligations of one suite data structure.
//!
//! For every method of the chosen structure this prints each sequent produced by the
//! verification-condition generator (its label path, assumptions and goal) together with
//! the prover that discharged it, mirroring the per-sequent view a Jahob user gets when
//! debugging a failing verification (§3.5 "debug the verification process").
//!
//! Usage:
//!
//! ```text
//! cargo run --example dump_obligations -- "Singly-Linked List"
//! cargo run --example dump_obligations            # defaults to the sized list
//! ```

use jahob_repro::jahob::suite;
use jahob_repro::provers::{Dispatcher, LemmaLibrary};

fn main() {
    let wanted = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "Sized List".to_string());
    let entry = suite::full_suite()
        .into_iter()
        .find(|e| e.name.eq_ignore_ascii_case(&wanted))
        .unwrap_or_else(|| {
            eprintln!("unknown structure {wanted:?}; available:");
            for e in suite::full_suite() {
                eprintln!("  {}", e.name);
            }
            std::process::exit(1);
        });

    let dispatcher = Dispatcher::new();
    for task in jahob_frontend::program_tasks(&entry.program) {
        println!("==== {} ====", task.qualified_name());
        let context = task.prover_context(&LemmaLibrary::new());
        for (i, ob) in task.obligations().iter().enumerate() {
            let label = if ob.sequent.labels.is_empty() {
                "<unlabelled>".to_string()
            } else {
                ob.sequent.labels.join(".")
            };
            let report = dispatcher.prove_one(ob, &context);
            let verdict = report
                .per_prover
                .iter()
                .find(|(_, s)| s.proved > 0)
                .map(|(id, _)| id.display_name().to_string())
                .unwrap_or_else(|| "UNPROVED".to_string());
            println!("-- sequent {i} [{label}] -> {verdict}");
            for a in &ob.sequent.assumptions {
                println!("     assume {a}");
            }
            println!("     |- {}", ob.sequent.goal);
        }
        // Also print the Figure 7 style summary for the method.
        let obligations = task.obligations();
        let report = dispatcher.prove_obligations(&obligations, &context);
        println!("{}", report.render(&task.qualified_name()));
    }
}
