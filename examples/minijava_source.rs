//! Verifying a data structure written as MiniJava+spec *source text*.
//!
//! This is the input format the paper shows in Figures 2–6: a Java class whose
//! specification lives in `/*: ... */` and `//: ...` comments. The example hands the
//! source text to `Verifier::verify_source` — parse → batch → prove → report in one
//! call — and prints a Figure 7-style report per method.
//!
//! Run with `cargo run --example minijava_source`.

use jahob_repro::prelude::*;

const GLOBAL_STACK: &str = r#"
    public class GlobalStack {
        private static StackNode top;
        private static int depth;

        /*: public static ghost specvar content :: "obj set" = "{}";
            private static ghost specvar nodes :: "obj set" = "{}";
            invariant depthNonNeg: "0 <= depth";
            invariant depthCard: "depth = card content";
            invariant topNodes: "top = null | top : nodes";
        */

        public static void push(Object x)
        /*: requires "x ~= null & x ~: content"
            modifies content
            ensures "content = old content Un {x}" */
        {
            StackNode n = new StackNode();
            n.data = x;
            n.below = top;
            top = n;
            depth = depth + 1;
            //: nodes := "{n} Un nodes";
            //: content := "{x} Un content";
        }

        public static boolean isEmpty()
        /*: ensures "(result = True) = (card content = 0)" */
        {
            return depth == 0;
        }

        public static void clear()
        /*: modifies content
            ensures "content = {}" */
        {
            top = null;
            depth = 0;
            //: nodes := "{}";
            //: content := "{}";
        }
    }

    public /*: claimedby GlobalStack */ class StackNode {
        public Object data;
        public StackNode below;
    }
"#;

fn main() {
    let verifier = Verifier::new();
    let report = verifier
        .verify_source(GLOBAL_STACK)
        .expect("the embedded source is well-formed");
    println!("{}", report.render());
    let verified = report.methods.iter().filter(|m| m.verified()).count();
    println!(
        "{verified} of {} methods fully verified from MiniJava source.",
        report.methods.len()
    );
}
