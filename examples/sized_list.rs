//! The Figure 7 scenario: verifying the sized list's `addNew` method, whose verification
//! condition needs several different reasoners (the syntactic prover for the trivial
//! conjuncts, ground SMT/FOL reasoning for the heap updates, and the BAPA decision
//! procedure for the cardinality invariant `size = card content`).
//!
//! Run with `cargo run --example sized_list`.

use jahob_repro::prelude::*;

fn main() {
    let program = suite::sized_list();
    let options = VerifyOptions::default();
    for result in verify_program(&program, &options) {
        println!("{}", result.render());
        let provers_used: Vec<String> = result
            .report
            .per_prover
            .iter()
            .filter(|(_, s)| s.proved > 0)
            .map(|(id, s)| format!("{id}: {}", s.proved))
            .collect();
        println!(
            "provers used for {}: {}\n",
            result.method,
            provers_used.join(", ")
        );
    }
}
