#!/usr/bin/env python3
"""Assert the persistent proof store warm start actually happened.

Usage: check_warm_start.py COLD_RUN_LOG WARM_RUN_LOG
       check_warm_start.py --seeded SEEDED_RUN_LOG

All logs are the stdout of `cargo run --example verify_suite` executed with
JAHOB_CACHE_DIR set; the example prints one line per run of the form

    Persistent store: X of Y obligations answered from disk.

Two-log mode: the cold run (empty store directory) must report 0 disk answers;
the warm run (second run against the same directory) must cover at least 90% of
the suite's obligations from disk.

`--seeded` mode: the single log is a *first* run against a directory populated
from the committed seed fixtures (tests/fixtures/*.jahob) — it must already be
warm (>= 90% from disk), proving a fresh checkout can skip the proving pass
entirely. Exits non-zero, naming the offending log, otherwise.
"""

import re
import sys

LINE = re.compile(
    r"Persistent store: (\d+) of (\d+) obligations answered from disk\."
)


def parse(path: str) -> tuple[int, int]:
    with open(path, encoding="utf-8") as f:
        text = f.read()
    m = LINE.search(text)
    if not m:
        sys.exit(f"{path}: no 'Persistent store: X of Y' line found")
    return int(m.group(1)), int(m.group(2))


def check_seeded(path: str) -> None:
    disk, total = parse(path)
    if total == 0:
        sys.exit(f"{path}: suite reported 0 obligations")
    if disk * 10 < total * 9:
        sys.exit(
            f"{path}: seeded run answered only {disk} of {total} obligations "
            "from disk (< 90%); the committed seed fixtures are stale or unreadable"
        )
    print(
        f"seeded warm start OK: {disk}/{total} obligations answered from disk "
        f"({100.0 * disk / total:.1f}%)"
    )


def main() -> None:
    if len(sys.argv) == 3 and sys.argv[1] == "--seeded":
        check_seeded(sys.argv[2])
        return
    if len(sys.argv) != 3:
        sys.exit(
            f"usage: {sys.argv[0]} COLD_RUN_LOG WARM_RUN_LOG | "
            f"{sys.argv[0]} --seeded SEEDED_RUN_LOG"
        )
    cold_path, warm_path = sys.argv[1], sys.argv[2]

    cold_disk, cold_total = parse(cold_path)
    if cold_total == 0:
        sys.exit(f"{cold_path}: suite reported 0 obligations")
    if cold_disk != 0:
        sys.exit(
            f"{cold_path}: cold run answered {cold_disk} obligations from disk; "
            "the store directory was not empty"
        )

    warm_disk, warm_total = parse(warm_path)
    if warm_total != cold_total:
        sys.exit(
            f"obligation counts disagree: cold run saw {cold_total}, "
            f"warm run saw {warm_total}"
        )
    if warm_disk * 10 < warm_total * 9:
        sys.exit(
            f"{warm_path}: warm run answered only {warm_disk} of {warm_total} "
            "obligations from disk (< 90%)"
        )

    print(
        f"warm start OK: {warm_disk}/{warm_total} obligations answered from disk "
        f"({100.0 * warm_disk / warm_total:.1f}%)"
    )


if __name__ == "__main__":
    main()
