#!/usr/bin/env python3
"""Assert the measured cost model's fuel budgets and routing gauges landed.

Usage: check_cost_model.py [BENCH_RESULTS_JSON]

Reads the bench trajectory file (default: BENCH_results.json in the current
directory) produced by the vendored criterion shim after a run of the fig15 and
ablations harnesses, and asserts the routing-efficiency invariants:

  * `suite_budget_aborts` > 0 — the fuel budgets actually engage on this suite
    (a value of 0 means the budgets are dead config and nobody would notice).
  * 0 <= `suite_rescue_retries` <= `suite_total` — the completeness rescue pass
    is bounded: each rescued sequent costs exactly one extra unbudgeted cascade.
  * `suite_proved` == `suite_total` — budgets are a permutation, not a pruning:
    the suite still discharges every sequent with budgets on (the default).
  * `ablation/suite_route_on` is present and well-formed — the routed+budgeted
    suite timing CI tracks across PRs cannot silently drop out of the file.

Exits non-zero with a diagnostic naming the violated invariant otherwise.
"""

import json
import sys


def metric(metrics: dict, name: str) -> float:
    """A metric value, accepting both the schema-2 {"value": V, "gen": G}
    objects and bare schema-1 numbers."""
    if name not in metrics:
        sys.exit(f"metric {name!r} missing from the trajectory file")
    entry = metrics[name]
    value = entry.get("value") if isinstance(entry, dict) else entry
    if not isinstance(value, (int, float)):
        sys.exit(f"metric {name!r} is malformed: {entry!r}")
    return float(value)


def main() -> None:
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_results.json"
    try:
        with open(path, encoding="utf-8") as f:
            results = json.load(f)
    except OSError as e:
        sys.exit(f"{path}: {e}")
    except json.JSONDecodeError as e:
        sys.exit(f"{path}: not valid JSON: {e}")

    metrics = results.get("metrics", {})
    benches = results.get("benches", {})

    aborts = metric(metrics, "suite_budget_aborts")
    rescues = metric(metrics, "suite_rescue_retries")
    proved = metric(metrics, "suite_proved")
    total = metric(metrics, "suite_total")

    if total <= 0:
        sys.exit(f"suite_total is {total:g}; the suite did not run")
    if proved != total:
        sys.exit(
            f"suite proved {proved:g} of {total:g} sequents with budgets on; "
            "the fuel budgets or rescue pass lost a proof"
        )
    if aborts <= 0:
        sys.exit(
            "suite_budget_aborts is 0: the fuel budgets never engaged on the "
            "suite, so the budgeted dispatch path is untested dead config"
        )
    if not 0 <= rescues <= total:
        sys.exit(
            f"suite_rescue_retries is {rescues:g}, outside [0, {total:g}]; "
            "the rescue pass must retry at most once per sequent"
        )

    name = "ablation/suite_route_on"
    record = benches.get(name)
    if not isinstance(record, dict):
        sys.exit(f"bench {name!r} missing from the trajectory file")
    mean = record.get("mean_ns")
    lo, hi = record.get("min_ns"), record.get("max_ns")
    samples = record.get("samples")
    if not all(isinstance(v, int) and v >= 0 for v in (mean, lo, hi, samples)):
        sys.exit(f"bench {name!r} is malformed: {record!r}")
    if samples == 0 or mean == 0 or not lo <= mean <= hi:
        sys.exit(f"bench {name!r} has implausible timings: {record!r}")

    print(
        f"cost model OK: {proved:g}/{total:g} proved, "
        f"{aborts:g} budget aborts, {rescues:g} rescued unbudgeted, "
        f"{name} mean {mean / 1e6:.1f} ms over {samples} samples"
    )


if __name__ == "__main__":
    main()
