#!/usr/bin/env python3
"""Assert a fault-injected suite run survived and never corrupted the store.

Usage: check_fault_torture.py RUN_LOG [STORE_DIR]

RUN_LOG is the stdout of `cargo run --example verify_suite` executed with a
`JAHOB_FAULTS` storm (and usually `JAHOB_CACHE_DIR`). The checks:

  * The log reaches its final "Across the suite: X of Y sequents proved
    automatically." line with Y > 0 — the process ran the whole suite to
    completion instead of dying on an injected panic or I/O error.
  * X <= Y, and the suite accounted for every sequent it claimed.
  * If STORE_DIR is given, `STORE_DIR/proof-store.jahob` (when it exists — a
    flush storm may legitimately have failed every write) is structurally
    intact: correct magic header, exactly one `## end` trailer whose record
    counts match the `V`/`F` records actually present, no content after the
    trailer, and no partially written (non-tab-separated) record lines. Torn
    `.tmp.*` debris next to the store is reported but allowed — an injected
    kill between tmp-write and rename leaves it there by design.

Exits non-zero with a diagnostic naming the violated invariant otherwise.
"""

import os
import re
import sys

SUITE_LINE = re.compile(r"Across the suite: (\d+) of (\d+) sequents proved automatically\.")
MAGIC = "jahob-proof-store"


def check_log(path: str) -> None:
    with open(path, encoding="utf-8") as f:
        text = f.read()
    m = SUITE_LINE.search(text)
    if not m:
        sys.exit(
            f"{path}: no 'Across the suite: X of Y' line — the faulted run did "
            "not survive to the suite summary"
        )
    proved, total = int(m.group(1)), int(m.group(2))
    if total == 0:
        sys.exit(f"{path}: suite reported 0 sequents")
    if proved > total:
        sys.exit(f"{path}: proved {proved} of {total} sequents (impossible)")
    print(f"faulted run OK: survived the suite, {proved}/{total} sequents proved")


def check_store(store_dir: str) -> None:
    store = os.path.join(store_dir, "proof-store.jahob")
    debris = [n for n in sorted(os.listdir(store_dir)) if ".tmp." in n]
    if debris:
        print(f"note: {len(debris)} torn tmp file(s) left by kill points (allowed): {debris}")
    if not os.path.exists(store):
        print(f"note: {store} does not exist (every faulted flush failed); nothing to parse")
        return
    with open(store, encoding="utf-8") as f:
        lines = f.read().split("\n")
    if not lines or not lines[0].startswith(MAGIC + " v"):
        sys.exit(f"{store}: bad magic header {lines[0][:40]!r}")
    verdicts = failures = 0
    trailer = None
    for lineno, line in enumerate(lines[1:], start=2):
        if trailer is not None:
            if line:
                sys.exit(f"{store}:{lineno}: content after the end trailer (torn write?)")
            continue
        if line.startswith("## end\t"):
            fields = line.split("\t")
            if len(fields) != 3:
                sys.exit(f"{store}:{lineno}: malformed trailer {line!r}")
            trailer = (int(fields[1]), int(fields[2]))
        elif line.startswith("V\t"):
            verdicts += 1
        elif line.startswith("F\t"):
            failures += 1
        elif line:
            sys.exit(f"{store}:{lineno}: unrecognised record {line[:40]!r} (torn write?)")
    if trailer is None:
        sys.exit(f"{store}: missing end trailer (truncated write)")
    if trailer != (verdicts, failures):
        sys.exit(
            f"{store}: trailer claims {trailer[0]} verdicts / {trailer[1]} failures, "
            f"file holds {verdicts} / {failures}"
        )
    print(f"store OK: {verdicts} verdict and {failures} failure records, trailer consistent")


def main() -> None:
    if len(sys.argv) not in (2, 3):
        sys.exit(f"usage: {sys.argv[0]} RUN_LOG [STORE_DIR]")
    check_log(sys.argv[1])
    if len(sys.argv) == 3:
        check_store(sys.argv[2])


if __name__ == "__main__":
    main()
