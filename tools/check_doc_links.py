#!/usr/bin/env python3
"""Checks that every relative markdown link in the repo's documentation resolves.

Scans the given markdown files and directories (default: README.md,
EXPERIMENTS.md, ROADMAP.md and everything under docs/) for inline links
`[text](target)`. Absolute URLs (http/https/mailto) are skipped; every other
target is resolved relative to the file containing it (dropping any #anchor)
and must exist on disk. Exits non-zero listing every broken link.

Run from the repository root:  python3 tools/check_doc_links.py
"""

import re
import sys
from pathlib import Path

LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def markdown_files(args):
    roots = [Path(a) for a in args] if args else [
        Path("README.md"),
        Path("EXPERIMENTS.md"),
        Path("ROADMAP.md"),
        Path("docs"),
    ]
    for root in roots:
        if root.is_dir():
            yield from sorted(root.rglob("*.md"))
        elif root.exists():
            yield root
        else:
            print(f"warning: {root} does not exist, skipping", file=sys.stderr)


def check(path: Path):
    broken = []
    for lineno, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        for match in LINK.finditer(line):
            target = match.group(1)
            if target.startswith(SKIP_SCHEMES) or target.startswith("#"):
                continue
            resolved = (path.parent / target.split("#", 1)[0]).resolve()
            if not resolved.exists():
                broken.append((lineno, target))
    return broken


def main():
    failures = 0
    checked = 0
    for path in markdown_files(sys.argv[1:]):
        checked += 1
        for lineno, target in check(path):
            failures += 1
            print(f"{path}:{lineno}: broken link -> {target}")
    if failures:
        print(f"{failures} broken link(s) across {checked} file(s)")
        return 1
    print(f"ok: all relative links resolve across {checked} markdown file(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
