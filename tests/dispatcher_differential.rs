//! Differential test for the dispatcher's scaling mechanisms.
//!
//! The work-stealing parallel dispatch, the canonical-form result cache (with its
//! negative failure-memo side), per-sequent prover routing, fuel-budgeted attempts
//! (with the unbudgeted rescue pass) and the program-wide obligation batching are
//! pure optimisations: they must not change *what* gets proved, only how fast. This
//! harness runs the full §7 example suite under every combination of
//! `{threads = 1, 2, 4, 8} x {cache on, off} x {route on, off} x {budgets on, off}`
//! (plus a coarser work-queue granularity) and asserts that every configuration
//! proves the identical set of sequents per method, and reports the `unproved`
//! descriptions in the identical, deterministic order — and that the batched
//! whole-program dispatch (`verify_program`: one tagged `prove_all` per program) is
//! indistinguishable from the per-method seed path (one `prove_all` per method)
//! across the whole matrix. Any future scaling PR that breaks either property fails
//! here.

use jahob_repro::frontend::program_tasks;
use jahob_repro::jahob::{self, suite, VerifyOptions};
use jahob_repro::provers::Dispatcher;

/// The observable verdict of one method: counts plus the unproved descriptions in
/// report order (NOT sorted — the dispatcher merges per-obligation results by
/// obligation index, so the order itself must be deterministic).
#[derive(Debug, Clone, PartialEq, Eq)]
struct MethodVerdict {
    method: String,
    proved: usize,
    total: usize,
    unproved: Vec<String>,
}

fn options(threads: usize, cache: bool, granularity: usize) -> VerifyOptions {
    VerifyOptions {
        dispatcher: jahob::DispatcherConfig::builder()
            .threads(threads)
            .cache(if cache {
                jahob::CacheMode::Memory
            } else {
                jahob::CacheMode::Off
            })
            .granularity(granularity)
            .build(),
        ..VerifyOptions::default()
    }
}

fn options_routed(threads: usize, cache: bool, route: bool) -> VerifyOptions {
    let mut opts = options(threads, cache, 1);
    opts.dispatcher.route = route;
    opts
}

fn options_budgeted(threads: usize, cache: bool, route: bool, budgets: bool) -> VerifyOptions {
    let mut opts = options_routed(threads, cache, route);
    opts.dispatcher.budgets = budgets;
    opts
}

fn verdict_of(structure: &str, result: &jahob::MethodResult) -> MethodVerdict {
    MethodVerdict {
        method: format!("{}::{}", structure, result.method),
        proved: result.report.proved_sequents,
        total: result.report.total_sequents,
        unproved: result.report.unproved.clone(),
    }
}

/// Runs the whole suite through the batched path (`verify_program` assembles one
/// tagged batch per program and proves it with a single `prove_all` call) and collects
/// one verdict per method, in suite order.
fn run_full_suite(options: &VerifyOptions) -> Vec<MethodVerdict> {
    let mut verdicts = Vec::new();
    for entry in suite::full_suite() {
        for result in jahob::verify_program(&entry.program, options) {
            verdicts.push(verdict_of(entry.name, &result));
        }
    }
    verdicts
}

/// Runs the whole suite through the per-method seed path: one dispatcher (and cache)
/// per program, one `prove_all` call per method — what `verify_program` did before
/// program-wide batching.
fn run_full_suite_per_method(options: &VerifyOptions) -> Vec<MethodVerdict> {
    let mut verdicts = Vec::new();
    for entry in suite::full_suite() {
        let dispatcher = Dispatcher::with_config(options.dispatcher.clone());
        for task in program_tasks(&entry.program) {
            let result = jahob::verify_task_with(&dispatcher, &task, &options.lemmas);
            verdicts.push(verdict_of(entry.name, &result));
        }
    }
    verdicts
}

#[test]
fn all_thread_and_cache_configurations_prove_the_same_sequents() {
    let baseline = run_full_suite(&options(1, false, 1));
    assert!(
        baseline.iter().map(|v| v.total).sum::<usize>() > 0,
        "suite produced no obligations"
    );
    for threads in [1usize, 2, 4, 8] {
        for cache in [false, true] {
            if threads == 1 && !cache {
                continue;
            }
            let run = run_full_suite(&options(threads, cache, 1));
            assert_eq!(
                baseline, run,
                "threads={threads} cache={cache} diverged from the sequential uncached baseline"
            );
        }
    }
    // A coarser work-queue granularity only changes how obligations are batched onto
    // workers, never the verdicts or their order.
    let coarse = run_full_suite(&options(4, true, 3));
    assert_eq!(baseline, coarse, "granularity=3 diverged from the baseline");
}

#[test]
fn batched_program_dispatch_matches_the_per_method_path_across_the_matrix() {
    // The tentpole invariant of program-wide batching: feeding every method's
    // obligations through ONE tagged `prove_all` call must produce, for every thread
    // count and cache setting, the identical per-method verdicts — including the
    // `unproved` ordering — as one `prove_all` call per method.
    for threads in [1usize, 2, 4, 8] {
        for cache in [false, true] {
            let opts = options(threads, cache, 1);
            let batched = run_full_suite(&opts);
            let per_method = run_full_suite_per_method(&opts);
            assert_eq!(
                batched, per_method,
                "threads={threads} cache={cache}: batched dispatch diverged from the per-method path"
            );
        }
    }
}

#[test]
fn batched_and_per_method_reports_agree_exactly_when_single_threaded() {
    // Single-threaded, the batched path processes obligations in the same order as the
    // per-method path, so the full report — per-prover proved/attempted counts, cache
    // attribution, hit/miss counters, unproved ordering — must agree field for field
    // (everything except measured times, which is why renders are byte-identical up to
    // timings). Under parallelism the hit/miss split can wobble (two workers racing a
    // cold key), so this strict form is pinned for threads=1 only. Budgets are pinned
    // off: the cost model commits at batch boundaries, and the two paths draw those
    // boundaries differently (one per program vs one per method), so with budgets on
    // the per-method path routes later methods against a better-calibrated model and
    // its *attempt counts* may legitimately differ. The verdict-level agreement with
    // budgets on is covered by `fuel_budgets_change_nothing_but_time` below.
    type Strict = Vec<(
        String,
        Vec<(String, usize, usize, usize)>,
        usize,
        usize,
        Vec<String>,
    )>;
    let strict = |verdicts: Vec<jahob::MethodResult>, structure: &str| -> Strict {
        verdicts
            .iter()
            .map(|r| {
                (
                    format!("{}::{}", structure, r.method),
                    r.report
                        .per_prover
                        .iter()
                        .map(|(id, s)| (id.to_string(), s.proved, s.attempted, s.cache_hits))
                        .collect(),
                    r.report.cache_hits,
                    r.report.cache_misses,
                    r.report.unproved.clone(),
                )
            })
            .collect()
    };
    for cache in [false, true] {
        let opts = options_budgeted(1, cache, true, false);
        let mut batched: Strict = Vec::new();
        let mut per_method: Strict = Vec::new();
        for entry in suite::full_suite() {
            batched.extend(strict(
                jahob::verify_program(&entry.program, &opts),
                entry.name,
            ));
            let dispatcher = Dispatcher::with_config(opts.dispatcher.clone());
            let results: Vec<jahob::MethodResult> = program_tasks(&entry.program)
                .iter()
                .map(|t| jahob::verify_task_with(&dispatcher, t, &opts.lemmas))
                .collect();
            per_method.extend(strict(results, entry.name));
        }
        assert_eq!(
            batched, per_method,
            "cache={cache}: single-threaded batched reports diverged from per-method reports"
        );
    }
}

#[test]
fn routing_on_and_off_prove_the_same_sequents_across_the_matrix() {
    // Per-sequent routing is a permutation of the global cascade order (hopeless
    // provers are demoted to a fallback tail, never dropped), so whether a sequent is
    // proved — and therefore the `unproved` list and its deterministic order — must be
    // identical with routing on and off, for every thread count and cache setting.
    // What routing may change is attribution (which prover is credited) and the
    // attempt counts; those are deliberately not compared here.
    for threads in [1usize, 2, 4, 8] {
        for cache in [false, true] {
            let routed = run_full_suite(&options_routed(threads, cache, true));
            let unrouted = run_full_suite(&options_routed(threads, cache, false));
            assert_eq!(
                routed, unrouted,
                "threads={threads} cache={cache}: routing changed the proved sequent set"
            );
        }
    }
}

#[test]
fn fuel_budgets_change_nothing_but_time() {
    // The measured cost model + fuel budgets + rescue pass are a pure optimisation:
    // permutation and early-abort, never pruning. Whatever the thread count, cache
    // setting or routing mode, budgets on and off must prove the identical sequent
    // set (same `unproved` lists in the same order) AND credit the identical prover
    // for every proof — the cascade order is frozen per batch, aborted attempts are
    // retried unbudgeted by the rescue pass, and completed budgeted attempts reach
    // the same verdicts as unbudgeted ones. Attempt counts and times are deliberately
    // not compared (aborting early and rescuing is the whole point).
    let attribution = |options: &VerifyOptions| -> Vec<(String, Vec<(String, usize)>)> {
        let mut per_method = Vec::new();
        for entry in suite::full_suite() {
            for result in jahob::verify_program(&entry.program, options) {
                per_method.push((
                    format!("{}::{}", entry.name, result.method),
                    result
                        .report
                        .per_prover
                        .iter()
                        .filter(|(_, s)| s.proved > 0)
                        .map(|(id, s)| (id.to_string(), s.proved))
                        .collect(),
                ));
            }
        }
        per_method
    };
    for threads in [1usize, 4] {
        for cache in [false, true] {
            for route in [false, true] {
                let on = options_budgeted(threads, cache, route, true);
                let off = options_budgeted(threads, cache, route, false);
                assert_eq!(
                    run_full_suite(&on),
                    run_full_suite(&off),
                    "threads={threads} cache={cache} route={route}: budgets changed the proved set"
                );
                assert_eq!(
                    attribution(&on),
                    attribution(&off),
                    "threads={threads} cache={cache} route={route}: budgets changed prover attribution"
                );
            }
        }
    }
}

#[test]
fn failure_memo_skips_dead_attempts_on_retried_suites() {
    // Within one suite pass the positive (verdict) cache answers recurring
    // obligations outright, so the negative side earns its keep on *retried* runs
    // whose verdict keys differ — here, a routed pass followed by an unrouted pass
    // sharing one cache (the config fingerprint keys them apart). The second pass
    // misses the verdict cache but skips every prover attempt the first pass already
    // saw fail on the same canonical sequent; verdicts must stay identical.
    let lemmas = jahob_repro::provers::LemmaLibrary::new();
    let routed = Dispatcher::with_config(options_routed(1, true, true).dispatcher);
    let first = jahob::run_suite_with(&routed, &lemmas);
    let mut unrouted = routed.clone();
    unrouted.config.route = false;
    let second = jahob::run_suite_with(&unrouted, &lemmas);
    let stats = unrouted.cache().stats();
    // Printed so EXPERIMENTS.md refreshes can quote the memo numbers:
    // `cargo test --release --test dispatcher_differential failure_memo -- --nocapture`.
    println!(
        "retried suite: {} failure-memo hits, {} memoized failures, {} verdict hits / {} misses",
        stats.failure_hits,
        unrouted.cache().failure_len(),
        stats.hits,
        stats.misses
    );
    assert!(
        stats.failure_hits > 0,
        "the unrouted retry must skip attempts the routed pass saw fail: {stats:?}"
    );
    assert!(unrouted.cache().failure_len() > 0);
    let proved = |rows: &[jahob::SuiteRow]| -> Vec<(String, usize, usize)> {
        rows.iter()
            .map(|r| (r.name.clone(), r.proved_sequents, r.total_sequents))
            .collect()
    };
    assert_eq!(proved(&first), proved(&second));
    // The skips surface in the retried pass's per-prover accounting (and hence in the
    // Figure 15 attempts column).
    let skipped = jahob::suite_failure_skips(&second);
    assert!(
        skipped > 0,
        "skipped attempts must be attributed per prover"
    );
}

#[test]
fn parallel_unproved_ordering_is_deterministic_across_repeated_runs() {
    // Thread interleavings differ between runs; the index-ordered merge must hide that.
    let first = run_full_suite(&options(8, false, 1));
    for _ in 0..2 {
        assert_eq!(first, run_full_suite(&options(8, false, 1)));
    }
}

#[test]
fn suite_cache_hit_rate_is_positive() {
    // Class invariants are re-proved per path, so running the Figure 15 suite with a
    // shared cache must answer a measurable share of obligations from the cache.
    let rows = jahob::run_suite(&options(1, true, 1));
    let hits: usize = rows.iter().map(|r| r.cache_hits).sum();
    let misses: usize = rows.iter().map(|r| r.cache_misses).sum();
    assert!(hits > 0, "expected cache hits on the Figure 15 suite");
    assert_eq!(
        hits + misses,
        rows.iter().map(|r| r.total_sequents).sum::<usize>(),
        "every obligation is either a hit or a miss when caching is on"
    );
    // Cached and uncached suite runs prove the same number of sequents per structure.
    let uncached = jahob::run_suite(&options(1, false, 1));
    let proved: Vec<(String, usize, usize)> = rows
        .iter()
        .map(|r| (r.name.clone(), r.proved_sequents, r.total_sequents))
        .collect();
    let proved_uncached: Vec<(String, usize, usize)> = uncached
        .iter()
        .map(|r| (r.name.clone(), r.proved_sequents, r.total_sequents))
        .collect();
    assert_eq!(proved, proved_uncached);
}
