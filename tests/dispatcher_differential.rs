//! Differential test for the dispatcher's scaling mechanisms.
//!
//! The work-stealing parallel dispatch and the canonical-form result cache are pure
//! optimisations: they must not change *what* gets proved, only how fast. This harness
//! runs the full §7 example suite under every combination of
//! `{threads = 1, 2, 4, 8} x {cache on, off}` (plus a coarser work-queue granularity)
//! and asserts that every configuration proves the identical set of sequents per
//! method, and reports the `unproved` descriptions in the identical, deterministic
//! order. Any future scaling PR that breaks either property fails here.

use jahob_repro::jahob::{self, suite, VerifyOptions};

/// The observable verdict of one method: counts plus the unproved descriptions in
/// report order (NOT sorted — the dispatcher merges per-obligation results by
/// obligation index, so the order itself must be deterministic).
#[derive(Debug, Clone, PartialEq, Eq)]
struct MethodVerdict {
    method: String,
    proved: usize,
    total: usize,
    unproved: Vec<String>,
}

fn options(threads: usize, cache: bool, granularity: usize) -> VerifyOptions {
    VerifyOptions {
        dispatcher: jahob::DispatcherConfig::pinned(threads, cache, granularity),
        ..VerifyOptions::default()
    }
}

/// Runs the whole suite and collects one verdict per method, in suite order.
fn run_full_suite(options: &VerifyOptions) -> Vec<MethodVerdict> {
    let mut verdicts = Vec::new();
    for entry in suite::full_suite() {
        for result in jahob::verify_program(&entry.program, options) {
            verdicts.push(MethodVerdict {
                method: format!("{}::{}", entry.name, result.method),
                proved: result.report.proved_sequents,
                total: result.report.total_sequents,
                unproved: result.report.unproved.clone(),
            });
        }
    }
    verdicts
}

#[test]
fn all_thread_and_cache_configurations_prove_the_same_sequents() {
    let baseline = run_full_suite(&options(1, false, 1));
    assert!(
        baseline.iter().map(|v| v.total).sum::<usize>() > 0,
        "suite produced no obligations"
    );
    for threads in [1usize, 2, 4, 8] {
        for cache in [false, true] {
            if threads == 1 && !cache {
                continue;
            }
            let run = run_full_suite(&options(threads, cache, 1));
            assert_eq!(
                baseline, run,
                "threads={threads} cache={cache} diverged from the sequential uncached baseline"
            );
        }
    }
    // A coarser work-queue granularity only changes how obligations are batched onto
    // workers, never the verdicts or their order.
    let coarse = run_full_suite(&options(4, true, 3));
    assert_eq!(baseline, coarse, "granularity=3 diverged from the baseline");
}

#[test]
fn parallel_unproved_ordering_is_deterministic_across_repeated_runs() {
    // Thread interleavings differ between runs; the index-ordered merge must hide that.
    let first = run_full_suite(&options(8, false, 1));
    for _ in 0..2 {
        assert_eq!(first, run_full_suite(&options(8, false, 1)));
    }
}

#[test]
fn suite_cache_hit_rate_is_positive() {
    // Class invariants are re-proved per path, so running the Figure 15 suite with a
    // shared cache must answer a measurable share of obligations from the cache.
    let rows = jahob::run_suite(&options(1, true, 1));
    let hits: usize = rows.iter().map(|r| r.cache_hits).sum();
    let misses: usize = rows.iter().map(|r| r.cache_misses).sum();
    assert!(hits > 0, "expected cache hits on the Figure 15 suite");
    assert_eq!(
        hits + misses,
        rows.iter().map(|r| r.total_sequents).sum::<usize>(),
        "every obligation is either a hit or a miss when caching is on"
    );
    // Cached and uncached suite runs prove the same number of sequents per structure.
    let uncached = jahob::run_suite(&options(1, false, 1));
    let proved: Vec<(String, usize, usize)> = rows
        .iter()
        .map(|r| (r.name.clone(), r.proved_sequents, r.total_sequents))
        .collect();
    let proved_uncached: Vec<(String, usize, usize)> = uncached
        .iter()
        .map(|r| (r.name.clone(), r.proved_sequents, r.total_sequents))
        .collect();
    assert_eq!(proved, proved_uncached);
}
