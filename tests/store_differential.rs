//! Differential test for the persistent proof store's warm-start path.
//!
//! The on-disk store is a pure optimisation, exactly like the in-memory cache it
//! serialises: a run warm-started from a store written by a prior dispatcher must
//! prove the identical set of sequents per method, with identical per-prover
//! attribution, as the cold run that wrote the store — across `{threads = 1, 4} x
//! {route on, off}`, mirroring `tests/dispatcher_differential.rs`. The store keys
//! every entry by configuration fingerprint, so the route-on and route-off worlds
//! are seeded separately and must never answer each other's lookups.
//!
//! The same file also pins the robustness contract: corrupt, truncated and
//! future-version store files are cold starts (never crashes), and concurrent
//! flushing dispatchers on one directory never torn-write the store.

use jahob_repro::prelude::*;
use jahob_repro::provers::store_path;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// The observable verdict of one method: counts, the unproved descriptions in
/// report order, and per-prover (proved, attempted, skipped) attribution.
#[derive(Debug, Clone, PartialEq, Eq)]
struct MethodVerdict {
    method: String,
    proved: usize,
    total: usize,
    unproved: Vec<String>,
    per_prover: BTreeMap<String, (usize, usize, usize)>,
}

fn verdict_of(structure: &str, result: &MethodResult) -> MethodVerdict {
    MethodVerdict {
        method: format!("{}::{}", structure, result.method),
        proved: result.report.proved_sequents,
        total: result.report.total_sequents,
        unproved: result.report.unproved.clone(),
        per_prover: result
            .report
            .per_prover
            .iter()
            .map(|(id, s)| {
                (
                    id.display_name().to_string(),
                    (s.proved, s.attempted, s.skipped),
                )
            })
            .collect(),
    }
}

fn persistent_config(dir: &Path, threads: usize, route: bool) -> DispatcherConfig {
    DispatcherConfig::builder()
        .threads(threads)
        .route(route)
        .cache(CacheMode::Persistent {
            dir: dir.to_path_buf(),
            flush: false,
        })
        .build()
}

/// Runs the whole suite through one [`Verifier`] (one shared cache), collecting one
/// verdict per method in suite order, plus the verifier itself for cache-stats and
/// flush access.
fn run_full_suite(config: DispatcherConfig) -> (Vec<MethodVerdict>, Verifier) {
    let verifier = Verifier::with_config(config);
    let mut verdicts = Vec::new();
    for entry in suite::full_suite() {
        for result in verifier.verify(&entry.program).methods {
            verdicts.push(verdict_of(entry.name, &result));
        }
    }
    (verdicts, verifier)
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("jahob-store-diff-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn warm_started_runs_prove_the_identical_suite_with_identical_attribution() {
    let dir = temp_dir("warm");
    // Seed the store once per routing config (the fingerprint separates them in one
    // file), with the sequential dispatcher as the reference world.
    let mut baselines: BTreeMap<bool, Vec<MethodVerdict>> = BTreeMap::new();
    for route in [true, false] {
        let (verdicts, verifier) = run_full_suite(persistent_config(&dir, 1, route));
        assert_eq!(
            verifier.cache_stats().disk_hits,
            0,
            "the seeding run must start cold (route={route})"
        );
        assert!(verifier.flush().expect("flush") > 0);
        baselines.insert(route, verdicts);
    }
    assert!(store_path(&dir).exists(), "seeding must write the store");
    let total: usize = baselines[&true].iter().map(|v| v.total).sum();
    let proved: usize = baselines[&true].iter().map(|v| v.proved).sum();
    assert!(
        total > 0 && proved == total,
        "suite baseline: {proved}/{total}"
    );

    for route in [true, false] {
        for threads in [1, 4] {
            let (verdicts, verifier) = run_full_suite(persistent_config(&dir, threads, route));
            assert_eq!(
                verdicts, baselines[&route],
                "threads={threads} route={route}: warm verdicts must be identical"
            );
            let stats = verifier.cache_stats();
            assert!(
                stats.disk_hits as usize * 10 >= total * 9,
                "threads={threads} route={route}: warm run must answer >=90% of {total} \
                 obligations from disk, got {}",
                stats.disk_hits
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn route_worlds_never_answer_each_others_lookups() {
    // Seed only the routed world; an unrouted warm run must find nothing on disk
    // (its fingerprint differs) yet still prove the identical set cold.
    let dir = temp_dir("route-isolation");
    let (routed, verifier) = run_full_suite(persistent_config(&dir, 1, true));
    verifier.flush().expect("flush");
    let (unrouted, warm) = run_full_suite(persistent_config(&dir, 1, false));
    assert_eq!(
        warm.cache_stats().disk_hits,
        0,
        "entries written under route=on must not serve route=off"
    );
    let proved = |vs: &[MethodVerdict]| -> Vec<(String, usize, usize)> {
        vs.iter()
            .map(|v| (v.method.clone(), v.proved, v.total))
            .collect()
    };
    assert_eq!(proved(&routed), proved(&unrouted), "verdicts still agree");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn committed_seed_fixtures_warm_start_the_suite() {
    // The seed store and cost-model profile committed under tests/fixtures/ are the
    // CI warm-start seeds: a fresh checkout must be able to answer (nearly) the
    // whole suite from them without proving anything first. This pins both the
    // fixture files' parseability under the current STORE_VERSION and their
    // fingerprint compatibility with the default (builder, env-free) configuration
    // they were generated under. Regenerate them with
    // `JAHOB_CACHE_DIR=tests/fixtures cargo run --release --example verify_suite`
    // whenever the fingerprint or store format legitimately changes.
    let fixtures = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let dir = temp_dir("seed-fixtures");
    std::fs::create_dir_all(&dir).expect("mkdir");
    for file in ["proof-store.jahob", "cost-model.jahob"] {
        std::fs::copy(fixtures.join(file), dir.join(file)).expect("copy fixture");
    }
    let (verdicts, verifier) = run_full_suite(persistent_config(&dir, 1, true));
    let total: usize = verdicts.iter().map(|v| v.total).sum();
    let proved: usize = verdicts.iter().map(|v| v.proved).sum();
    assert!(
        total > 0 && proved == total,
        "suite from seed: {proved}/{total}"
    );
    let disk = verifier.cache_stats().disk_hits as usize;
    assert!(
        disk * 10 >= total * 9,
        "the committed seed must answer >=90% of {total} obligations, got {disk}"
    );
    assert!(
        verifier.cost_model_cells() > 0,
        "the committed cost-model profile must warm-load too"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_truncated_and_future_version_stores_cold_start() {
    for (name, contents) in [
        ("garbage", "not a proof store\nat all\n".to_string()),
        ("truncated", "jahob-proof-store v1\nV\ttrail".to_string()),
        (
            "future",
            "jahob-proof-store v999\nV\twhatever\n".to_string(),
        ),
    ] {
        let dir = temp_dir(name);
        std::fs::create_dir_all(&dir).expect("mkdir");
        std::fs::write(store_path(&dir), &contents).expect("write bad store");
        let config = persistent_config(&dir, 1, true);
        let verifier = Verifier::with_config(config);
        let program = suite::sized_list();
        let report = verifier.verify(&program);
        assert!(report.verified(), "{name}: cold start still proves");
        assert_eq!(
            report.cache_disk_hits(),
            0,
            "{name}: a rejected store must contribute nothing"
        );
        // And flushing over the bad file recovers it: a fresh verifier warm-starts.
        assert!(verifier.flush().expect("flush over bad store") > 0);
        let recovered = Verifier::with_config(persistent_config(&dir, 1, true));
        let warm = recovered.verify(&program);
        assert!(
            warm.cache_disk_hits() > 0,
            "{name}: the flushed store must replay"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn concurrent_flushing_dispatchers_never_torn_write() {
    // Two verifiers share one directory; each proves a different structure and both
    // flush repeatedly from parallel threads. Whatever the interleaving, the store
    // must always parse (atomic rename — readers never see a partial file) and end
    // up holding both contributions.
    let dir = temp_dir("concurrent");
    let a = Verifier::with_config(persistent_config(&dir, 1, true));
    let b = Verifier::with_config(persistent_config(&dir, 1, true));
    assert!(a.verify(&suite::sized_list()).verified());
    assert!(b.verify(&suite::singly_linked_list()).proved_sequents() > 0);
    std::thread::scope(|scope| {
        for v in [&a, &b] {
            let dir = &dir;
            scope.spawn(move || {
                for _ in 0..20 {
                    v.flush().expect("concurrent flush");
                    // Every intermediate state must be a well-formed store: a fresh
                    // dispatcher constructed mid-flush-storm loads it (or cold
                    // starts on NotFound) without a crash or a warning-worthy tear.
                    let probe = Verifier::with_config(persistent_config(dir, 1, true));
                    let _ = probe.cache_stats();
                }
            });
        }
    });
    // After the storm: one more merge from each side, then a reader sees the union.
    a.flush().expect("final flush a");
    b.flush().expect("final flush b");
    let reader = Verifier::with_config(persistent_config(&dir, 1, true));
    assert!(
        reader.verify(&suite::sized_list()).cache_disk_hits() > 0,
        "first contributor's entries survived"
    );
    assert!(
        reader
            .verify(&suite::singly_linked_list())
            .cache_disk_hits()
            > 0,
        "second contributor's entries survived"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn dropping_two_flushing_dispatchers_on_one_dir_is_safe() {
    // The satellite's literal scenario: two dispatchers with `flush: true` on one
    // directory, dropped in either order — both drop-flushes land, the store parses,
    // and a warm reader replays entries from both.
    let dir = temp_dir("drop-pair");
    let flushing = || {
        Verifier::with_config(
            DispatcherConfig::builder()
                .cache(CacheMode::Persistent {
                    dir: dir.clone(),
                    flush: true,
                })
                .build(),
        )
    };
    {
        let a = flushing();
        let b = flushing();
        assert!(a.verify(&suite::sized_list()).verified());
        assert!(b.verify(&suite::singly_linked_list()).proved_sequents() > 0);
        drop(a);
        drop(b);
    }
    let reader = Verifier::with_config(persistent_config(&dir, 1, true));
    assert!(reader.verify(&suite::sized_list()).cache_disk_hits() > 0);
    assert!(
        reader
            .verify(&suite::singly_linked_list())
            .cache_disk_hits()
            > 0
    );
    let _ = std::fs::remove_dir_all(&dir);
}
