//! Workspace-level smoke test of the umbrella crate's re-export surface: the Figure 7
//! scenario (verifying `List.addNew` of the sized list) must be reachable end-to-end
//! through every re-exported crate path, so a broken `pub use` in `src/lib.rs` or a
//! broken inter-crate dependency edge fails here even if the member crates' own tests
//! pass.

use jahob_repro::jahob::{render_figure15, run_suite, suite, verify_program, VerifyOptions};

#[test]
fn umbrella_crate_verifies_the_sized_list_end_to_end() {
    // Figure 7: the sized list's addNew needs the syntactic prover plus specialised
    // reasoners (BAPA for the cardinality invariant, SMT for the ground residue).
    let program = suite::sized_list();
    let results = verify_program(&program, &VerifyOptions::default());
    let add = results
        .iter()
        .find(|r| r.method == "List.addNew")
        .expect("List.addNew task exists");
    assert!(add.report.total_sequents >= 5);
    assert!(add.report.proved_sequents >= 2);
    let multi_prover = add
        .report
        .per_prover
        .values()
        .filter(|s| s.proved > 0)
        .count();
    assert!(
        multi_prover >= 2,
        "Figure 7 needs the combination of provers, report: {:?}",
        add.report
    );
    assert!(add.render().contains("sequents"));
}

#[test]
fn every_reexported_crate_is_reachable() {
    // Touch one item through each `pub use` of the umbrella crate, so dropping a
    // re-export (or a workspace dependency edge) is a compile failure of this test.
    use jahob_repro::{arith, automata, bapa, folp, frontend, logic, mona, provers, smt, vcgen};

    let form = logic::parse_form("x ~= null").expect("logic parser reachable");
    let sequent = logic::Sequent::new(vec![form.clone()], form);
    assert!(provers::syntactic_prover(&sequent));
    // The specialised provers each cover a different fragment; for reachability it is
    // enough that every one of them runs on the sequent and at least one proves it.
    let specialised = [
        smt::prove_sequent(&sequent, &smt::SmtOptions::default()).proved,
        bapa::prove_sequent(&sequent, &bapa::BapaOptions::default()).proved,
        folp::prove_sequent(&sequent, &folp::FolOptions::default()).proved,
        mona::prove_sequent(&sequent, &mona::MonaOptions::default()).proved,
    ];
    assert!(
        specialised.iter().any(|p| *p),
        "no specialised prover discharged the trivial sequent: {specialised:?}"
    );

    assert_eq!(arith::check(&[]), arith::Outcome::Sat);
    let dfa = automata::Dfa::new(1, 0, vec![true], vec![vec![0, 0]]);
    assert!(dfa.accepts(&[]));

    let program = jahob_repro::jahob::suite::sized_list();
    let tasks = frontend::program_tasks(&program);
    assert!(!tasks.is_empty());
    let obligations: Vec<vcgen::ProofObligation> = tasks[0].obligations();
    assert!(!obligations.is_empty());
}

#[test]
fn figure15_suite_table_renders_through_the_umbrella() {
    let rows = run_suite(&VerifyOptions::default());
    assert!(rows.len() >= 5, "suite has at least five structures");
    let table = render_figure15(&rows);
    assert!(table.contains("Data Structure"));
    for row in &rows {
        assert!(table.contains(&row.name), "missing row {}", row.name);
    }
}
