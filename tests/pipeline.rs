//! Integration tests spanning the whole workspace: frontend → vcgen → provers → driver.

use jahob_repro::jahob::{suite, verify_program, VerifyOptions};
use jahob_repro::logic::{parse_form, Sequent};
use jahob_repro::provers::{Dispatcher, ProverContext, ProverId};
use jahob_repro::vcgen::ProofObligation;

fn ob(assumptions: &[&str], goal: &str) -> ProofObligation {
    ProofObligation {
        sequent: Sequent::new(
            assumptions
                .iter()
                .map(|a| parse_form(a).expect("parse"))
                .collect(),
            parse_form(goal).expect("parse"),
        ),
        hints: Vec::new(),
    }
}

#[test]
fn architecture_exposes_all_figure1_provers() {
    // Figure 1: syntactic prover, MONA, SMT (CVC3/Z3), FOL (SPASS/E), BAPA, interactive.
    let order = ProverId::default_order();
    assert_eq!(order.len(), 6);
    assert!(order.contains(&ProverId::Syntactic));
    assert!(order.contains(&ProverId::Mona));
    assert!(order.contains(&ProverId::Smt));
    assert!(order.contains(&ProverId::Fol));
    assert!(order.contains(&ProverId::Bapa));
    assert!(order.contains(&ProverId::Interactive));
}

#[test]
fn integrated_reasoning_spreads_sequents_over_provers() {
    // One batch containing a syntactic goal, an arithmetic goal, a cardinality goal and
    // a monadic set goal: each lands in a different prover.
    let obs = vec![
        ob(&["x ~= null"], "x ~= null"),
        ob(&["size = old_size + 1", "0 <= old_size"], "1 <= size"),
        ob(
            &[
                "size = card content",
                "x ~: content",
                "content1 = content Un {x}",
            ],
            "size + 1 = card content1",
        ),
        ob(
            &["ALL x. x : nodes --> x : alloc", "n : nodes"],
            "n : alloc",
        ),
    ];
    let report = Dispatcher::new().prove_obligations(&obs, &ProverContext::default());
    assert!(report.succeeded(), "unproved: {:?}", report.unproved);
    let distinct_provers = report
        .per_prover
        .iter()
        .filter(|(_, s)| s.proved > 0)
        .count();
    assert!(
        distinct_provers >= 3,
        "expected >=3 provers, report: {report:?}"
    );
}

#[test]
fn sized_list_figure7_report_shape() {
    let program = suite::sized_list();
    let results = verify_program(&program, &VerifyOptions::default());
    let add = results
        .iter()
        .find(|r| r.method == "List.addNew")
        .expect("List.addNew present");
    let text = add.render();
    assert!(text.contains("========"));
    assert!(text.contains("sequents"));
    // The verification condition splits into several sequents, as in Figure 7.
    assert!(add.report.total_sequents >= 5);
}

#[test]
fn whole_suite_produces_obligations_for_every_structure() {
    for entry in suite::full_suite() {
        let tasks = jahob_repro::frontend::program_tasks(&entry.program);
        let obligations: usize = tasks.iter().map(|t| t.obligations().len()).sum();
        assert!(
            obligations >= 2,
            "{} produced too few obligations ({obligations})",
            entry.name
        );
    }
}

#[test]
fn simple_structures_are_mostly_automated_end_to_end() {
    // The qualitative claim of the paper that this reproduction checks mechanically: the
    // integrated reasoner discharges the bulk of every structure's sequents
    // automatically (the residue corresponds to the paper's interactive tail, see
    // EXPERIMENTS.md).
    for program in [
        suite::singly_linked_list(),
        suite::cursor_list(),
        suite::spanning_tree(),
    ] {
        let results = verify_program(&program, &VerifyOptions::default());
        let total: usize = results.iter().map(|r| r.report.total_sequents).sum();
        let proved: usize = results.iter().map(|r| r.report.proved_sequents).sum();
        assert!(total >= 2, "too few obligations ({total})");
        assert!(
            proved * 2 >= total,
            "automation below 1/2: {proved}/{total}"
        );
    }
}
