//! Pins the end-to-end value of `by inst` quantifier-instantiation hints (§3.5).
//!
//! Two suite methods — the hash table's bucket-membership lemma and the binary search
//! tree's ordering step — carry assertions whose proof needs a universally quantified
//! assumption specialised at a *compound* set witness. No prover finds that witness on
//! its own: the SMT interface only instantiates with ground candidate terms already in
//! the sequent, the resolution prover cannot bridge the cardinality arithmetic, and
//! BAPA/MONA cannot see through the quantifier. This harness asserts both directions:
//! with the hint the obligations are proved (identically across the whole
//! threads × cache × route matrix), and with the hint stripped they land in
//! `unproved` — so the hints are doing real work, not decorating sequents some prover
//! could discharge anyway.

use jahob_repro::frontend::{Program, Stmt};
use jahob_repro::jahob::{self, suite, VerifyOptions};

/// The two structures whose specs need instantiation hints, with the labels of the
/// hinted assertions.
fn hinted_programs() -> Vec<(&'static str, Program, &'static str)> {
    vec![
        ("Hash Table", suite::hash_table(), "residueBound"),
        (
            "Binary Search Tree",
            suite::binary_search_tree(),
            "splitBound",
        ),
    ]
}

/// Removes every `inst` hint from the program's assert/note statements (labels and
/// lemma hints are kept), recursing through control flow.
fn strip_inst_hints(program: &Program) -> Program {
    fn strip_stmts(stmts: &mut [Stmt]) {
        for stmt in stmts {
            match stmt {
                Stmt::SpecAssert { hints, .. } | Stmt::SpecNote { hints, .. } => {
                    hints.retain(|h| !h.is_inst());
                }
                Stmt::If {
                    then_branch,
                    else_branch,
                    ..
                } => {
                    strip_stmts(then_branch);
                    strip_stmts(else_branch);
                }
                Stmt::While { body, .. } => strip_stmts(body),
                _ => {}
            }
        }
    }
    let mut stripped = program.clone();
    for class in &mut stripped.classes {
        for method in &mut class.methods {
            strip_stmts(&mut method.body);
        }
    }
    stripped
}

fn options(threads: usize, cache: bool, route: bool) -> VerifyOptions {
    let mode = if cache {
        jahob::CacheMode::Memory
    } else {
        jahob::CacheMode::Off
    };
    VerifyOptions {
        dispatcher: jahob::DispatcherConfig::builder()
            .threads(threads)
            .cache(mode)
            .route(route)
            .build(),
        ..VerifyOptions::default()
    }
}

#[test]
fn inst_hinted_suite_methods_are_fully_proved() {
    for (name, program, _) in hinted_programs() {
        for result in jahob::verify_program(&program, &options(1, true, true)) {
            assert!(
                result.verified(),
                "{name}::{} with inst hints: {:?}",
                result.method,
                result.report.unproved
            );
        }
    }
}

#[test]
fn stripping_the_inst_hint_loses_exactly_the_hinted_obligations() {
    for (name, program, label) in hinted_programs() {
        let stripped = strip_inst_hints(&program);
        assert_ne!(stripped, program, "{name}: stripping must remove a hint");
        let unproved: Vec<String> = jahob::verify_program(&stripped, &options(1, true, true))
            .iter()
            .flat_map(|r| r.report.unproved.clone())
            .collect();
        assert_eq!(
            unproved,
            vec![label.to_string()],
            "{name}: without its inst hint exactly the `{label}` assertion must fail"
        );
    }
}

#[test]
fn inst_hints_prove_identically_across_the_dispatch_matrix() {
    // The instantiated sequents flow through routing, the cache (keyed per witness)
    // and the work-stealing queue like any other obligation: every configuration must
    // prove the identical set, in the identical deterministic report order.
    let verdicts = |opts: &VerifyOptions| -> Vec<(String, usize, usize, Vec<String>)> {
        hinted_programs()
            .iter()
            .flat_map(|(name, program, _)| {
                jahob::verify_program(program, opts)
                    .into_iter()
                    .map(move |r| {
                        (
                            format!("{name}::{}", r.method),
                            r.report.proved_sequents,
                            r.report.total_sequents,
                            r.report.unproved,
                        )
                    })
            })
            .collect()
    };
    let baseline = verdicts(&options(1, false, true));
    assert!(baseline.iter().all(|(_, p, t, _)| p == t), "{baseline:?}");
    for threads in [1usize, 2, 4, 8] {
        for cache in [false, true] {
            for route in [false, true] {
                let run = verdicts(&options(threads, cache, route));
                assert_eq!(
                    baseline, run,
                    "threads={threads} cache={cache} route={route} diverged"
                );
            }
        }
    }
}
