//! Deterministic fault-injection torture harness (the robustness contract of the
//! fault-isolated dispatcher).
//!
//! Three properties are pinned here, all against the full §7 suite:
//!
//! 1. **Faults off is byte-identical to before**: a dispatcher with the default
//!    (empty) fault spec — and one whose spec can never fire — reproduces the
//!    baseline run field for field, including cache attribution.
//! 2. **Injected prover faults are contained**: panics become attributed crash
//!    counts, delays only cost time, and the process always survives — across
//!    `{threads 1, 4} x {cache off, memory} x {route on, off}`. Crashing a prover
//!    that never wins a sequent changes no verdicts at all.
//! 3. **Injected store faults never corrupt the proof store**: a flush storm under
//!    `io`/`torn` kill points leaves a structurally intact store that a fresh
//!    faultless dispatcher warm-starts from.
//!
//! Fault specs here are set through the typed builder (`DispatcherConfig::faults`),
//! not `JAHOB_FAULTS`, so the tests are hermetic under parallel execution; the env
//! knob goes through the identical `FaultSpec::parse` path (unit-tested in
//! `jahob_provers`).

use jahob_repro::prelude::*;
use jahob_repro::provers::{store_path, STORE_VERSION};
use std::collections::BTreeMap;
use std::path::PathBuf;

/// The verdict view of one suite row: what was proved, out of how many, and which
/// prover each proof is attributed to. Deliberately excludes attempt/skip/cache
/// counts — crashing a losing prover legitimately perturbs those (a crashed attempt
/// is never failure-memoized), but must never perturb anything in this view.
fn verdicts(rows: &[SuiteRow]) -> Vec<(String, usize, usize, BTreeMap<String, usize>)> {
    rows.iter()
        .map(|r| {
            (
                r.name.clone(),
                r.proved_sequents,
                r.total_sequents,
                r.per_prover
                    .iter()
                    .filter(|(_, s)| s.proved > 0)
                    .map(|(id, s)| (id.display_name().to_string(), s.proved))
                    .collect(),
            )
        })
        .collect()
}

/// The field-for-field view: verdicts plus every per-prover and cache counter the
/// rows carry (times excluded — wall clocks are never reproducible).
fn full_snapshot(rows: &[SuiteRow]) -> Vec<String> {
    rows.iter()
        .map(|r| {
            let provers: Vec<String> = r
                .per_prover
                .iter()
                .map(|(id, s)| {
                    format!(
                        "{}:{}/{} hits={} skip={} abort={} crash={} deadline={}",
                        id.display_name(),
                        s.proved,
                        s.attempted,
                        s.cache_hits,
                        s.skipped,
                        s.budget_aborts,
                        s.crashes,
                        s.deadline_aborts
                    )
                })
                .collect();
            format!(
                "{} {}/{} cache={}+{}disk/{} rescue={} [{}]",
                r.name,
                r.proved_sequents,
                r.total_sequents,
                r.cache_hits,
                r.cache_disk_hits,
                r.cache_misses,
                r.rescue_retries,
                provers.join(";")
            )
        })
        .collect()
}

fn config(threads: usize, cache: CacheMode, route: bool, spec: &str) -> DispatcherConfig {
    let mut builder = DispatcherConfig::builder()
        .threads(threads)
        .cache(cache)
        .route(route);
    if !spec.is_empty() {
        builder = builder.faults(spec.parse::<FaultSpec>().expect("valid fault spec"));
    }
    builder.build()
}

fn run(config: DispatcherConfig) -> Vec<SuiteRow> {
    Verifier::with_config(config).verify_suite()
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("jahob-faults-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn empty_and_never_firing_fault_specs_reproduce_the_baseline_field_for_field() {
    let baseline = run(config(1, CacheMode::Memory, true, ""));
    assert!(!baseline.is_empty());
    let total: usize = baseline.iter().map(|r| r.total_sequents).sum();
    let proved: usize = baseline.iter().map(|r| r.proved_sequents).sum();
    assert_eq!(proved, total, "suite baseline must be fully proved");
    assert_eq!(suite_crashes(&baseline), 0);
    assert_eq!(suite_deadline_aborts(&baseline), 0);
    // An armed plane whose kill points never trigger must be indistinguishable from
    // the disabled plane — the containment wrapper and the I/O hooks themselves are
    // on every path, so any drift here would mean the plumbing perturbs healthy runs.
    let armed_idle = run(config(
        1,
        CacheMode::Memory,
        true,
        "smt:panic@1000000;mona:panic@1000000;fol:delay=250ms@1000000",
    ));
    assert_eq!(full_snapshot(&armed_idle), full_snapshot(&baseline));
    // A firing *delay* fault costs only wall clock: every counted field survives.
    let delayed = run(config(1, CacheMode::Memory, true, "fol:delay=1ms@10"));
    assert_eq!(full_snapshot(&delayed), full_snapshot(&baseline));
}

#[test]
fn crashing_a_never_winning_prover_changes_no_verdicts() {
    // MONA proves nothing on the §7 suite (every MONA attempt there loses to a
    // later prover), so crashing it on every attempt is the cleanest test that
    // containment keeps the cascade walking: same proofs, same attribution, with
    // the crashes showing up in the new counters instead of as process death.
    // Routing is off and the cache is off so MONA is genuinely attempted.
    let baseline = run(config(1, CacheMode::Off, false, ""));
    let crashed = run(config(1, CacheMode::Off, false, "mona:panic@1"));
    assert_eq!(verdicts(&crashed), verdicts(&baseline));
    let crashes = suite_crashes(&crashed);
    assert!(crashes > 0, "MONA must have been attempted and crashed");
    assert_eq!(suite_crashes(&baseline), 0);
    // The crash footer reaches the rendered Figure 15 table.
    let rendered = render_figure15(&crashed);
    assert!(
        rendered.contains(&format!(
            "Fault containment: {crashes} prover crashes contained"
        )),
        "{rendered}"
    );
    assert!(!render_figure15(&baseline).contains("Fault containment"));
}

#[test]
fn panic_storms_never_kill_the_process_across_the_dispatch_matrix() {
    let baseline = run(config(1, CacheMode::Memory, true, ""));
    let total: usize = baseline.iter().map(|r| r.total_sequents).sum();
    // Every prover that can win crashes on a rotating schedule. Verdicts may
    // legitimately degrade (a crashed attempt is a lost proof opportunity), but the
    // suite must always complete, account for every sequent, and attribute the
    // losses to crash counters.
    let storm = "syntactic:panic@7;smt:panic@5;mona:panic@3;bapa:panic@4;fol:panic@6";
    for threads in [1, 4] {
        for cache in [CacheMode::Off, CacheMode::Memory] {
            for route in [true, false] {
                let rows = run(config(threads, cache.clone(), route, storm));
                let got: usize = rows.iter().map(|r| r.total_sequents).sum();
                assert_eq!(
                    got, total,
                    "threads={threads} cache={cache} route={route}: every sequent accounted for"
                );
                let proved: usize = rows.iter().map(|r| r.proved_sequents).sum();
                assert!(
                    proved <= total,
                    "threads={threads} cache={cache} route={route}"
                );
                assert!(
                    suite_crashes(&rows) > 0,
                    "threads={threads} cache={cache} route={route}: the storm must fire"
                );
                // Rendering a crashed run must work too — it is what the operator
                // sees instead of a dead process.
                let rendered = render_figure15(&rows);
                assert!(rendered.contains("Fault containment:"), "{rendered}");
            }
        }
    }
}

#[test]
fn a_zero_deadline_stops_the_searching_provers_but_the_suite_survives() {
    // deadline_ms = 0 expires every attempt at its first cooperative check: the
    // worst-case wall-clock regime. The syntactic prover (exempt: no long loops)
    // still proves its large share of the suite, every deadline stop is counted,
    // and the unproved remainder is attributed — not hung, not crashed.
    let rows = run_with_deadline(0);
    let total: usize = rows.iter().map(|r| r.total_sequents).sum();
    let proved: usize = rows.iter().map(|r| r.proved_sequents).sum();
    assert!(
        total > 0 && proved > 0,
        "syntactic proofs survive: {proved}/{total}"
    );
    assert!(
        proved < total,
        "the searching provers' sequents must be lost"
    );
    assert!(suite_deadline_aborts(&rows) > 0);
    assert_eq!(suite_crashes(&rows), 0, "a deadline stop is not a crash");
    let rendered = render_figure15(&rows);
    assert!(
        rendered.contains("deadline-stopped across the suite"),
        "{rendered}"
    );
    // A generous deadline changes nothing: the suite's slowest single attempt is
    // far below an hour, so every verdict matches the unconstrained baseline.
    let generous = run_with_deadline(3_600_000);
    assert_eq!(suite_deadline_aborts(&generous), 0);
    let baseline = run(config(1, CacheMode::Memory, true, ""));
    assert_eq!(verdicts(&generous), verdicts(&baseline));
}

fn run_with_deadline(ms: u64) -> Vec<SuiteRow> {
    run(DispatcherConfig::builder()
        .threads(1)
        .cache(CacheMode::Memory)
        .deadline_ms(ms)
        .build())
}

#[test]
fn store_kill_points_never_leave_a_torn_or_unreadable_store() {
    let dir = temp_dir("store-storm");
    // `torn@2` kills every other flush in the instant between tmp-file write and
    // atomic rename; `io@5` fails every fifth read/write outright. The dispatcher's
    // bounded retry absorbs most of it; what matters is that *no interleaving ever
    // corrupts the store on disk*.
    let faulted = Verifier::with_config(config(
        1,
        CacheMode::Persistent {
            dir: dir.clone(),
            flush: false,
        },
        true,
        "store:torn@2;store:io@5",
    ));
    assert!(faulted.verify(&suite::sized_list()).verified());
    let mut flushed = 0usize;
    let mut failed = 0usize;
    for _ in 0..20 {
        // A flush may still fail once the retry budget is burned — that is an
        // *error return*, never a crash and never a torn file.
        match faulted.flush() {
            Ok(n) => {
                assert!(n > 0);
                flushed += 1;
            }
            Err(_) => failed += 1,
        }
        // Whatever just happened, the on-disk store must be structurally intact:
        // correct header, trailer present, counts consistent (a fresh parser
        // accepts it end to end).
        let text = std::fs::read_to_string(store_path(&dir)).expect("store readable");
        assert!(
            text.starts_with(&format!("jahob-proof-store v{STORE_VERSION}")),
            "store header intact"
        );
        assert!(text.contains("\n## end\t"), "store trailer intact");
    }
    assert!(flushed > 0, "some flushes must land ({failed} failed)");
    // A fresh, faultless dispatcher warm-starts from the stormed store.
    let clean = Verifier::with_config(config(
        1,
        CacheMode::Persistent {
            dir: dir.clone(),
            flush: false,
        },
        true,
        "",
    ));
    assert!(
        clean.verify(&suite::sized_list()).cache_disk_hits() > 0,
        "the stormed store must still replay verdicts"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
