//! Integration tests for the MiniJava+spec text frontend: source text → parser →
//! translation → verification-condition generation → integrated reasoning.

use jahob_repro::frontend::parse_program;
use jahob_repro::jahob::{verify_program, VerifyOptions};

/// A small stack with a set-valued abstract state and a cardinality invariant, written in
/// the paper's surface syntax (specifications inside `/*: ... */` and `//: ...` comments).
const STACK: &str = r#"
    public class TextStack {
        private static TextNode top;
        private static int depth;

        /*: public static ghost specvar content :: "obj set" = "{}";
            private static ghost specvar nodes :: "obj set" = "{}";
            invariant depthNonNeg: "0 <= depth";
            invariant depthCard: "depth = card content";
        */

        public static void push(Object x)
        /*: requires "x ~= null & x ~: content"
            modifies content
            ensures "content = old content Un {x}" */
        {
            TextNode n = new TextNode();
            n.data = x;
            n.below = top;
            top = n;
            depth = depth + 1;
            //: nodes := "{n} Un nodes";
            //: content := "{x} Un content";
        }

        public static void clear()
        /*: modifies content ensures "content = {}" */
        {
            top = null;
            depth = 0;
            //: nodes := "{}";
            //: content := "{}";
        }
    }

    public /*: claimedby TextStack */ class TextNode {
        public Object data;
        public TextNode below;
    }
"#;

#[test]
fn text_sources_verify_end_to_end() {
    let program = parse_program(STACK).expect("parse");
    assert_eq!(program.classes.len(), 2);
    let results = verify_program(&program, &VerifyOptions::default());
    assert_eq!(results.len(), 2);
    for result in &results {
        assert!(
            result.verified(),
            "{} not fully verified:\n{}",
            result.method,
            result.render()
        );
    }
}

/// A table whose bucket-slice lemma needs a quantifier instantiation: the universal
/// `cap` bound must be specialised at the compound witness `live - dead`, which no
/// prover finds on its own (see `docs/SPEC_LANGUAGE.md`).
const SLICE_LEMMA: &str = r#"
    public class SliceTable {
        private static int used;

        /*: public static ghost specvar content :: "(obj * obj) set" = "{}";
            private static ghost specvar live :: "(obj * obj) set" = "{}";
            private static ghost specvar dead :: "(obj * obj) set" = "{}";
        */

        public static void sliceBound()
        /*: requires "comment ''cap'' (ALL b. card (content Int b) <= used) & 0 <= used"
            ensures "True" */
        {
            //: assert residue: "card (content Int (live - dead)) <= used + 1" by inst b := "live - dead";
        }
    }
"#;

#[test]
fn inst_hints_work_from_source_text_end_to_end() {
    // The full surface-syntax path for quantifier-instantiation hints: the `by inst`
    // grammar parses, the witness survives translation and the WLP round trip, the
    // dispatcher's instantiation pass specialises the universal `cap` assumption, and
    // the ground instance is proved. Dropping the hint (same source minus the `by`
    // clause) leaves exactly that assertion unproved.
    let program = parse_program(SLICE_LEMMA).expect("parse");
    for result in verify_program(&program, &VerifyOptions::default()) {
        assert!(
            result.verified(),
            "{} not fully verified:\n{}",
            result.method,
            result.render()
        );
    }

    let unhinted_src = SLICE_LEMMA.replace(" by inst b := \"live - dead\"", "");
    assert_ne!(unhinted_src, SLICE_LEMMA);
    let unhinted = parse_program(&unhinted_src).expect("parse");
    let unproved: Vec<String> = verify_program(&unhinted, &VerifyOptions::default())
        .iter()
        .flat_map(|r| r.report.unproved.clone())
        .collect();
    assert_eq!(unproved, vec!["residue".to_string()]);
}

#[test]
fn missing_ghost_update_is_caught() {
    // Forgetting the `content := ...` specification assignment makes the postcondition
    // (and the cardinality invariant) unprovable — the verifier must report unproved
    // sequents rather than silently succeeding.
    let buggy = STACK.replace("//: content := \"{x} Un content\";", "");
    let program = parse_program(&buggy).expect("parse");
    let push = verify_program(&program, &VerifyOptions::default())
        .into_iter()
        .find(|r| r.method == "TextStack.push")
        .expect("push present");
    assert!(
        !push.verified(),
        "buggy push must not verify:\n{}",
        push.render()
    );
    assert!(push
        .report
        .unproved
        .iter()
        .any(|d| d.contains("post") || d.contains("depthCard")));
}

#[test]
fn wrong_postcondition_is_caught() {
    // A postcondition that claims the wrong abstract effect (removing instead of adding)
    // must leave an unproved `post` sequent.
    let wrong = STACK.replace(
        "ensures \"content = old content Un {x}\"",
        "ensures \"content = old content - {x}\"",
    );
    let program = parse_program(&wrong).expect("parse");
    let push = verify_program(&program, &VerifyOptions::default())
        .into_iter()
        .find(|r| r.method == "TextStack.push")
        .expect("push present");
    assert!(!push.verified());
}

#[test]
fn parse_errors_carry_line_numbers() {
    let err = parse_program("class Broken {\n  int x\n}").unwrap_err();
    assert!(
        err.line >= 2,
        "error should point into the class body: {err}"
    );
}
